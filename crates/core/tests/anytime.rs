//! Property tests for anytime exploration: truncation soundness,
//! cancellation determinism, checkpoint/resume bit-identity, and panic
//! isolation.
//!
//! The load-bearing facts proved here:
//!
//! * a run stopped at candidate boundary `k` (by budget, cancel, or
//!   deadline — all three take the same stop-check path) is bit-identical
//!   to the serial reference truncated at the same `k`, for every
//!   result-preserving prune strategy × bound kind;
//! * under `Dominated` pruning the truncated frontier is a subset of the
//!   complete run's evaluations, and bit-identical to it once the budget
//!   is not hit;
//! * `explore_resume(checkpoint)` continues a truncated run to the
//!   bit-identical complete result, including through a JSON round trip;
//! * a candidate whose synthesis panics is isolated (counted in
//!   `stats.faulted`) without aborting the run or changing the surviving
//!   Pareto set.

use rsp_arch::{presets, BaseArchitecture};
use rsp_core::{
    explore_reference_with, explore_resume, explore_with, BoundKind, ClockBound, Completeness,
    Constraints, DesignSpace, Exploration, ExploreControl, ExploreOptions, Objective,
    PruneStrategy, TruncationReason,
};
use rsp_kernel::Kernel;
use rsp_mapper::{map, ConfigContext, MapOptions};
use rsp_synth::{AreaModel, DelayModel, ModelCache};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// The full suite mapped onto the 8×8 base, shared across tests (mapping
/// is the expensive part of the setup, not exploration).
fn fixture() -> &'static (BaseArchitecture, Vec<Kernel>, Vec<ConfigContext>) {
    static FIXTURE: OnceLock<(BaseArchitecture, Vec<Kernel>, Vec<ConfigContext>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let base = presets::base_8x8().base().clone();
        let kernels = rsp_kernel::suite::all();
        let contexts = kernels
            .iter()
            .map(|k| map(&base, k, &MapOptions::default()).unwrap())
            .collect();
        (base, kernels, contexts)
    })
}

fn options(prune: PruneStrategy, bound: BoundKind, control: ExploreControl) -> ExploreOptions {
    ExploreOptions {
        parallelism: Some(3),
        prune,
        bound,
        clock_bound: ClockBound::StageFloor,
        constraints: Constraints::default(),
        objective: Objective::AreaDelayProduct,
        cache: None,
        profiles: None,
        control,
        recorder: rsp_core::obs::global(),
    }
}

fn run_engine(opts: &ExploreOptions) -> Exploration {
    let (base, kernels, contexts) = fixture();
    let weights = vec![1.0; kernels.len()];
    explore_with(
        base,
        kernels,
        contexts,
        &weights,
        &DesignSpace::extended(),
        opts,
    )
    .unwrap()
}

fn run_reference(control: &ExploreControl) -> Exploration {
    let (base, kernels, contexts) = fixture();
    let weights = vec![1.0; kernels.len()];
    explore_reference_with(
        base,
        kernels,
        contexts,
        &weights,
        &DesignSpace::extended(),
        &Constraints::default(),
        Objective::AreaDelayProduct,
        control,
    )
    .unwrap()
}

fn assert_bit_identical(engine: &Exploration, reference: &Exploration, what: &str) {
    assert_eq!(
        engine.feasible.len(),
        reference.feasible.len(),
        "feasible size ({what})"
    );
    for (e, r) in engine.feasible.iter().zip(&reference.feasible) {
        assert_eq!(e.arch.name(), r.arch.name(), "{what}");
        assert_eq!(e.area_slices.to_bits(), r.area_slices.to_bits(), "{what}");
        assert_eq!(e.clock_ns.to_bits(), r.clock_ns.to_bits(), "{what}");
        assert_eq!(e.est_cycles, r.est_cycles, "{what}");
        assert_eq!(e.est_et_ns.to_bits(), r.est_et_ns.to_bits(), "{what}");
        assert_eq!(e.cost_bound_ok, r.cost_bound_ok, "{what}");
    }
    assert_eq!(engine.pareto, reference.pareto, "pareto ({what})");
    assert_eq!(engine.best, reference.best, "best ({what})");
    assert_eq!(
        engine.base_et_ns.to_bits(),
        reference.base_et_ns.to_bits(),
        "{what}"
    );
    assert_eq!(engine.completeness, reference.completeness, "{what}");
}

fn space_total() -> usize {
    DesignSpace::extended().plans().count()
}

/// Stopping at every candidate boundary `k` — via the machine-independent
/// candidate budget, which shares the stop-check path with cancellation
/// and deadlines — reproduces the serial reference truncated at the same
/// `k`, bit for bit, for every result-preserving prune strategy × bound
/// kind (the table the cancellation-determinism satellite asks for).
#[test]
fn truncation_at_every_boundary_matches_reference() {
    let total = space_total();
    for prune in [PruneStrategy::None, PruneStrategy::LowerBound] {
        for bound in [BoundKind::Aggregate, BoundKind::PerRowResidual] {
            for k in 0..=total {
                let control = ExploreControl::with_budget(k);
                let engine = run_engine(&options(prune, bound, control.clone()));
                let reference = run_reference(&control);
                assert_bit_identical(&engine, &reference, &format!("{prune:?}/{bound:?} k={k}"));
                let expected = if k < total {
                    Completeness::Truncated {
                        candidates_remaining: total - k,
                        reason: TruncationReason::CandidateBudget,
                    }
                } else {
                    Completeness::Complete
                };
                assert_eq!(engine.completeness, expected, "{prune:?}/{bound:?} k={k}");
                assert_eq!(engine.stats.candidates_seen, k.min(total));
            }
        }
    }
}

/// Under `Dominated` pruning (which may skip estimation of dominated
/// candidates) the truncated frontier is a subset of the complete run's
/// evaluations, and the frontier becomes bit-identical to the complete
/// run's exactly when the budget is not hit.
#[test]
fn dominated_truncation_is_subset_of_complete_evaluations() {
    let total = space_total();
    let frontier = |r: &Exploration| -> Vec<(String, u64, u64)> {
        r.pareto_points()
            .map(|p| {
                (
                    p.arch.name().to_string(),
                    p.area_slices.to_bits(),
                    p.est_et_ns.to_bits(),
                )
            })
            .collect()
    };
    for bound in [BoundKind::Aggregate, BoundKind::PerRowResidual] {
        let complete = run_engine(&options(
            PruneStrategy::Dominated,
            bound,
            ExploreControl::default(),
        ));
        let complete_points: Vec<(String, u64, u64)> = complete
            .feasible
            .iter()
            .map(|p| {
                (
                    p.arch.name().to_string(),
                    p.area_slices.to_bits(),
                    p.est_et_ns.to_bits(),
                )
            })
            .collect();
        for k in 0..=total + 1 {
            let truncated = run_engine(&options(
                PruneStrategy::Dominated,
                bound,
                ExploreControl::with_budget(k),
            ));
            // Every truncated evaluation appears — bit-identically — in
            // the complete run's evaluations (prefix property).
            for p in &truncated.feasible {
                let key = (
                    p.arch.name().to_string(),
                    p.area_slices.to_bits(),
                    p.est_et_ns.to_bits(),
                );
                assert!(
                    complete_points.contains(&key),
                    "{bound:?} k={k}: {} not in complete evaluations",
                    p.arch.name()
                );
            }
            for f in frontier(&truncated) {
                assert!(complete_points.contains(&f), "{bound:?} k={k}: frontier");
            }
            if k >= total {
                assert!(truncated.completeness.is_complete(), "{bound:?} k={k}");
                assert_bit_identical(&truncated, &complete, &format!("{bound:?} k={k}"));
            } else {
                assert!(!truncated.completeness.is_complete(), "{bound:?} k={k}");
            }
        }
    }
}

/// Resuming a checkpoint taken at any boundary `k` — with no further
/// budget — reaches the bit-identical complete result. For `Dominated`
/// (where a resumed frontier may prune more of `feasible`) the frontier
/// and selection still match exactly.
#[test]
fn resume_reaches_bit_identical_complete_result() {
    let total = space_total();
    let (base, kernels, contexts) = fixture();
    let weights = vec![1.0; kernels.len()];
    let space = DesignSpace::extended();
    for prune in [PruneStrategy::None, PruneStrategy::LowerBound] {
        let complete = run_engine(&options(
            prune,
            BoundKind::PerRowResidual,
            Default::default(),
        ));
        for k in 0..=total {
            let truncated = run_engine(&options(
                prune,
                BoundKind::PerRowResidual,
                ExploreControl::with_budget(k),
            ));
            let ckpt = truncated.checkpoint();
            assert_eq!(ckpt.cursor(), k.min(total));
            assert_eq!(ckpt.candidates_total(), total);
            let resumed = explore_resume(
                base,
                kernels,
                contexts,
                &weights,
                &space,
                &options(prune, BoundKind::PerRowResidual, Default::default()),
                &ckpt,
            )
            .unwrap();
            assert_bit_identical(&resumed, &complete, &format!("{prune:?} k={k}"));
        }
    }
    // Dominated: resumed run may prune feasible differently (its frontier
    // snapshot at resume time is denser), but the streamed frontier and
    // the selected optimum are invariant.
    let complete = run_engine(&options(
        PruneStrategy::Dominated,
        BoundKind::PerRowResidual,
        Default::default(),
    ));
    for k in [0, 1, 7, total / 2, total - 1] {
        let truncated = run_engine(&options(
            PruneStrategy::Dominated,
            BoundKind::PerRowResidual,
            ExploreControl::with_budget(k),
        ));
        let resumed = explore_resume(
            base,
            kernels,
            contexts,
            &weights,
            &space,
            &options(
                PruneStrategy::Dominated,
                BoundKind::PerRowResidual,
                Default::default(),
            ),
            &truncated.checkpoint(),
        )
        .unwrap();
        let frontier = |r: &Exploration| -> Vec<(String, u64, u64)> {
            r.pareto_points()
                .map(|p| {
                    (
                        p.arch.name().to_string(),
                        p.area_slices.to_bits(),
                        p.est_et_ns.to_bits(),
                    )
                })
                .collect()
        };
        assert_eq!(frontier(&resumed), frontier(&complete), "dominated k={k}");
        assert_eq!(
            resumed.best_point().arch.name(),
            complete.best_point().arch.name()
        );
        assert!(resumed.completeness.is_complete());
    }
}

/// A checkpoint survives a JSON round trip (shortest-round-trip float
/// formatting keeps every f64 bit-exact) and still resumes to the
/// bit-identical complete result. Resuming an already-complete
/// checkpoint is a harmless no-op.
#[test]
fn checkpoint_roundtrips_through_json() {
    let total = space_total();
    let (base, kernels, contexts) = fixture();
    let weights = vec![1.0; kernels.len()];
    let space = DesignSpace::extended();
    let opts = options(
        PruneStrategy::LowerBound,
        BoundKind::PerRowResidual,
        Default::default(),
    );
    let complete = run_engine(&opts);

    let truncated = run_engine(&options(
        PruneStrategy::LowerBound,
        BoundKind::PerRowResidual,
        ExploreControl::with_budget(total / 2),
    ));
    let json = serde_json::to_string(&truncated.checkpoint()).unwrap();
    let ckpt: rsp_core::ExploreCheckpoint = serde_json::from_str(&json).unwrap();
    assert!(!ckpt.is_complete());
    let resumed = explore_resume(base, kernels, contexts, &weights, &space, &opts, &ckpt).unwrap();
    assert_bit_identical(&resumed, &complete, "json round trip");

    // Complete checkpoint → no-op resume.
    let ckpt = complete.checkpoint();
    assert!(ckpt.is_complete());
    let resumed = explore_resume(base, kernels, contexts, &weights, &space, &opts, &ckpt).unwrap();
    assert_bit_identical(&resumed, &complete, "complete no-op resume");
}

/// A checkpoint refuses to resume under different options or a different
/// design space (fingerprint mismatch).
#[test]
fn checkpoint_mismatch_is_rejected() {
    let (base, kernels, contexts) = fixture();
    let weights = vec![1.0; kernels.len()];
    let opts = options(
        PruneStrategy::LowerBound,
        BoundKind::PerRowResidual,
        Default::default(),
    );
    let truncated = run_engine(&options(
        PruneStrategy::LowerBound,
        BoundKind::PerRowResidual,
        ExploreControl::with_budget(5),
    ));
    let ckpt = truncated.checkpoint();

    // Different prune strategy.
    let err = explore_resume(
        base,
        kernels,
        contexts,
        &weights,
        &DesignSpace::extended(),
        &options(
            PruneStrategy::None,
            BoundKind::PerRowResidual,
            Default::default(),
        ),
        &ckpt,
    )
    .unwrap_err();
    assert!(matches!(err, rsp_core::RspError::CheckpointMismatch { .. }));

    // Different space (candidate total differs).
    let err = explore_resume(
        base,
        kernels,
        contexts,
        &weights,
        &DesignSpace::paper(),
        &opts,
        &ckpt,
    )
    .unwrap_err();
    assert!(matches!(err, rsp_core::RspError::CheckpointMismatch { .. }));
}

/// A pre-raised cancel flag stops the sweep at candidate 0 with an empty
/// anytime result; a zero deadline does the same with `Deadline`; the
/// candidate budget outranks both when several conditions hold.
#[test]
fn cancel_and_deadline_semantics() {
    let total = space_total();

    let control = ExploreControl::default();
    control.request_cancel();
    let cancelled = run_engine(&options(
        PruneStrategy::LowerBound,
        BoundKind::PerRowResidual,
        control,
    ));
    assert_eq!(
        cancelled.completeness,
        Completeness::Truncated {
            candidates_remaining: total,
            reason: TruncationReason::Cancelled,
        }
    );
    assert!(cancelled.feasible.is_empty());
    assert!(cancelled.try_best_point().is_none());
    assert_eq!(cancelled.best, usize::MAX);

    let timed_out = run_engine(&options(
        PruneStrategy::LowerBound,
        BoundKind::PerRowResidual,
        ExploreControl::with_deadline(Duration::ZERO),
    ));
    assert_eq!(
        timed_out.completeness,
        Completeness::Truncated {
            candidates_remaining: total,
            reason: TruncationReason::Deadline,
        }
    );

    // Budget outranks a raised cancel flag at the same boundary.
    let control = ExploreControl {
        deadline: Some(Duration::ZERO),
        candidate_budget: Some(0),
        cancel: Arc::new(AtomicBool::new(true)),
    };
    let budgeted = run_engine(&options(
        PruneStrategy::LowerBound,
        BoundKind::PerRowResidual,
        control,
    ));
    assert_eq!(
        budgeted.completeness,
        Completeness::Truncated {
            candidates_remaining: total,
            reason: TruncationReason::CandidateBudget,
        }
    );
}

/// A cancel raised asynchronously from another thread lands at *some*
/// candidate boundary `k`; wherever it lands, the result equals the
/// serial reference truncated at the same `k` (or the complete result if
/// the sweep won the race).
#[test]
fn async_cancel_truncates_at_a_sound_boundary() {
    let control = ExploreControl::default();
    let handle = control.cancel_handle();
    let flipper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_micros(200));
        handle.store(true, Ordering::Relaxed);
    });
    let engine = run_engine(&options(
        PruneStrategy::LowerBound,
        BoundKind::PerRowResidual,
        control,
    ));
    flipper.join().unwrap();
    let k = engine.stats.candidates_seen;
    let reference = run_reference(&ExploreControl::with_budget(k));
    // Completeness tags differ in reason (Cancelled vs CandidateBudget)
    // when the flag landed mid-sweep; everything else is bit-identical.
    assert_eq!(engine.feasible.len(), reference.feasible.len());
    for (e, r) in engine.feasible.iter().zip(&reference.feasible) {
        assert_eq!(e.arch.name(), r.arch.name());
        assert_eq!(e.est_et_ns.to_bits(), r.est_et_ns.to_bits());
    }
    assert_eq!(engine.pareto, reference.pareto);
    assert_eq!(engine.best, reference.best);
}

/// Marker embedded in the injected panic so the test's panic-hook filter
/// can mute the expected worker panic without hiding real ones.
const FAULT_MARKER: &str = "anytime-test-injected-fault";

fn mute_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let muted = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(FAULT_MARKER))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(FAULT_MARKER));
            if !muted {
                default(info);
            }
        }));
    });
}

/// A candidate whose delay synthesis panics is isolated: the run
/// completes, `stats.faulted` counts it, the other candidates'
/// evaluations are untouched bit for bit, and — when the faulted
/// candidate was not on the frontier — the Pareto set and selection are
/// unchanged.
#[test]
fn injected_panic_is_isolated_and_counted() {
    mute_injected_panics();
    let clean = run_engine(&options(
        PruneStrategy::None,
        BoundKind::PerRowResidual,
        Default::default(),
    ));
    // Pick a feasible candidate that is NOT on the Pareto frontier, so
    // dropping it must leave the frontier and selection unchanged.
    let target = clean
        .feasible
        .iter()
        .enumerate()
        .find(|(i, _)| !clean.pareto.contains(i))
        .map(|(_, p)| p.arch.name().to_string())
        .expect("extended space has non-frontier feasible points");

    let fault_target = target.clone();
    let faulty = DelayModel::new().with_fault_hook(move |arch| {
        if arch.name() == fault_target {
            panic!("{FAULT_MARKER}: {}", arch.name());
        }
    });
    let mut opts = options(
        PruneStrategy::None,
        BoundKind::PerRowResidual,
        Default::default(),
    );
    opts.cache = Some(Arc::new(ModelCache::with_models(AreaModel::new(), faulty)));
    let faulted = run_engine(&opts);

    assert_eq!(faulted.stats.faulted, 1);
    assert!(faulted.completeness.is_complete());
    assert_eq!(faulted.stats.candidates_seen, clean.stats.candidates_seen);
    assert_eq!(faulted.feasible.len(), clean.feasible.len() - 1);
    // Every surviving evaluation is bit-identical to the clean run's.
    let mut clean_iter = clean.feasible.iter().filter(|p| p.arch.name() != target);
    for f in &faulted.feasible {
        let c = clean_iter.next().unwrap();
        assert_eq!(f.arch.name(), c.arch.name());
        assert_eq!(f.area_slices.to_bits(), c.area_slices.to_bits());
        assert_eq!(f.est_et_ns.to_bits(), c.est_et_ns.to_bits());
    }
    let names = |r: &Exploration| -> Vec<String> {
        r.pareto_points()
            .map(|p| p.arch.name().to_string())
            .collect()
    };
    assert_eq!(names(&faulted), names(&clean));
    assert_eq!(
        faulted.best_point().arch.name(),
        clean.best_point().arch.name()
    );
}
