//! Golden-render test for `Trace::render` and unit coverage for
//! `peak_parallelism` — the trace API frozen against an exact expected
//! waveform so formatting regressions are caught, not just smoke-tested.

use rsp_arch::presets;
use rsp_core::rearrange;
use rsp_kernel::{AddrExpr, Bindings, DfgBuilder, Kernel, KernelBuilder, MemoryImage, Operand};
use rsp_mapper::{map, MapOptions};
use rsp_sim::{simulate, SimOptions, SimReport};

/// Two elements of `out[e] = in[e] + 7` — deterministic lockstep
/// placement on rows 0/1 of column 0, one operation per cycle.
fn tiny_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("tiny", 2);
    let input = kb.array("in", 2);
    let out = kb.array("out", 2);
    let mut b = DfgBuilder::new();
    let l = b.load(AddrExpr::flat(input, 0, 1));
    let a = b.add(Operand::Node(l), Operand::Const(7));
    b.store(AddrExpr::flat(out, 0, 1), Operand::Node(a));
    kb.body(b.finish()).build().unwrap()
}

fn traced_report(kernel: &Kernel, arch: &rsp_arch::RspArchitecture) -> SimReport {
    let ctx = map(arch.base(), kernel, &MapOptions::default()).unwrap();
    let mut input = MemoryImage::zeroed(kernel);
    input.write(0, 0, 10);
    input.write(0, 1, 20);
    let (cycles, bindings);
    if arch.is_base() {
        cycles = ctx.cycles().to_vec();
        bindings = vec![None; ctx.instances().len()];
    } else {
        let r = rearrange(&ctx, arch, &Default::default()).unwrap();
        cycles = r.cycles;
        bindings = r.bindings;
    }
    simulate(
        &ctx,
        arch,
        &cycles,
        &bindings,
        kernel,
        &input,
        &Bindings::defaults(kernel),
        &SimOptions {
            record_trace: true,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn render_matches_golden_waveform() {
    let report = traced_report(&tiny_kernel(), &presets::base_8x8());
    let trace = report.trace.expect("trace recorded");
    // One trailing column: the waveform reserves a cycle for the last
    // operation's pipeline drain (`total_cycles = cycles + 1`).
    let golden = concat!(
        "    cycle |    1 |    2 |    3 |    4 |\n",
        "  PE[0,0] |   Ld |    + |   St |      |\n",
        "  PE[1,0] |   Ld |    + |   St |      |\n",
    );
    assert_eq!(trace.render(), golden);
}

#[test]
fn render_marks_shared_multiplications_with_a_tick() {
    // On RS#1 every multiplication is served by a shared row resource;
    // the waveform marks those issues with a trailing apostrophe.
    let k = rsp_kernel::suite::mvm();
    let report = traced_report(&k, &presets::rs1());
    let text = report.trace.expect("trace recorded").render();
    assert!(text.contains("*'"), "no shared-mult tick in:\n{text}");
    assert!(!text.contains("ld'"), "loads are never shared:\n{text}");
}

#[test]
fn peak_parallelism_counts_simultaneously_active_pes() {
    let report = traced_report(&tiny_kernel(), &presets::base_8x8());
    let trace = report.trace.expect("trace recorded");
    // Both elements run in lockstep on rows 0 and 1 of column 0.
    assert_eq!(trace.peak_parallelism(), 2);
    assert_eq!(trace.total_cycles(), report.cycles + 1);
    assert_eq!(trace.events().len(), 6);
    assert_eq!(trace.at_cycle(0).count(), 2);
}

#[test]
fn peak_parallelism_saturates_at_the_array_width() {
    // MVM occupies whole 8-PE columns; peak concurrency can never
    // exceed the 64 PEs of the array and must reach a full column.
    let report = traced_report(&rsp_kernel::suite::mvm(), &presets::base_8x8());
    let trace = report.trace.expect("trace recorded");
    let peak = trace.peak_parallelism();
    assert!((8..=64).contains(&peak), "peak {peak}");
}
