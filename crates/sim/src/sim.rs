//! The simulation engine.

use crate::error::SimError;
use crate::trace::{Trace, TraceEvent};
use rsp_arch::{OpKind, RspArchitecture, SharedResourceId};
use rsp_core::Rearranged;
use rsp_kernel::{apply_op, Bindings, Kernel, MemoryImage};
use rsp_mapper::{ConfigContext, RefillPlan, SrcOperand};
use std::collections::HashMap;

/// Simulation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Enforce row-bus capacities (off by default, matching the mapper's
    /// operand-reuse idealization).
    pub check_buses: bool,
    /// Record a full per-cycle execution trace in the report.
    pub record_trace: bool,
}

/// Result of a successful simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total executed cycles (refill-stall cycles included for split
    /// schedules).
    pub cycles: u32,
    /// Cycles the array spent stalled reloading its configuration
    /// caches (0 unless the schedule was executed through
    /// [`simulate_split`] with a split [`RefillPlan`]).
    pub refill_stalls: u32,
    /// Final memory image (loads observed the input snapshot; stores
    /// landed here).
    pub memory: MemoryImage,
    /// Operations executed.
    pub ops_executed: usize,
    /// Operations issued on shared resources.
    pub shared_issues: usize,
    /// Peak simultaneous in-flight operations on any single shared
    /// resource (2 for a busy 2-stage pipelined multiplier — the Fig. 6
    /// effect; never exceeds the resource's stage count).
    pub max_in_flight: usize,
    /// Per-cycle execution trace (only with
    /// [`SimOptions::record_trace`]).
    pub trace: Option<Trace>,
}

/// Simulates an arbitrary `(schedule, bindings)` pair for `ctx` on `arch`.
///
/// # Errors
///
/// Any [`SimError`] structural violation; the first one encountered is
/// returned.
#[allow(clippy::too_many_arguments)] // the full hardware state is the point
pub fn simulate(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    schedule: &[u32],
    bindings: &[Option<SharedResourceId>],
    kernel: &Kernel,
    input: &MemoryImage,
    params: &Bindings,
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    let n = ctx.instances().len();
    if schedule.len() != n || bindings.len() != n {
        return Err(SimError::ShapeMismatch {
            expected: n,
            actual: schedule.len().min(bindings.len()),
        });
    }
    debug_assert_eq!(kernel.total_ops(), n);

    // Issue order by cycle.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| schedule[i]);

    let latency = |i: usize| -> u32 { u32::from(arch.op_latency(ctx.instances()[i].op)) };

    let mut memory = input.clone();
    let mut values: Vec<i32> = vec![0; n];
    let mut pair_values: Vec<i32> = vec![0; n];

    let mut pe_busy: HashMap<(usize, usize, u32), ()> = HashMap::new();
    let mut issue_busy: HashMap<(SharedResourceId, u32), ()> = HashMap::new();
    let mut in_flight: HashMap<(SharedResourceId, u32), usize> = HashMap::new();
    let mut bus_read: HashMap<(usize, u32), usize> = HashMap::new();
    let mut bus_write: HashMap<(usize, u32), usize> = HashMap::new();

    let mut shared_issues = 0usize;
    let mut max_in_flight = 0usize;
    let mut events: Vec<TraceEvent> = Vec::new();

    for &i in &order {
        let inst = &ctx.instances()[i];
        let t = schedule[i];

        // One operation per PE per cycle.
        if pe_busy.insert((inst.pe.row, inst.pe.col, t), ()).is_some() {
            return Err(SimError::PeConflict {
                pe: inst.pe,
                cycle: t,
            });
        }

        // Operand readiness and interconnect reachability.
        for &p in &inst.preds {
            let ready = schedule[p.index()] + latency(p.index());
            if ready > t {
                return Err(SimError::OperandNotReady {
                    consumer: i,
                    producer: p.index(),
                    cycle: t,
                });
            }
            let from = ctx.instances()[p.index()].pe;
            if !arch.can_route(from, inst.pe) {
                return Err(SimError::UnroutableDependence { from, to: inst.pe });
            }
        }

        // Shared-resource discipline.
        if arch.op_is_shared(inst.op) {
            let res = bindings[i].ok_or(SimError::UnboundSharedOp { instance: i })?;
            if !res.reaches(inst.pe) {
                return Err(SimError::UnreachableResource {
                    instance: i,
                    resource: res,
                });
            }
            if issue_busy.insert((res, t), ()).is_some() {
                return Err(SimError::SharedIssueConflict {
                    resource: res,
                    cycle: t,
                });
            }
            shared_issues += 1;
            let stages = u32::from(arch.op_latency(inst.op));
            for dt in 0..stages {
                let e = in_flight.entry((res, t + dt)).or_default();
                *e += 1;
                max_in_flight = max_in_flight.max(*e);
            }
        }

        // Bus capacities.
        if opts.check_buses {
            if inst.bus_read_words() > 0 {
                let e = bus_read.entry((inst.pe.row, t)).or_default();
                *e += inst.bus_read_words();
                if *e > ctx.buses().read_buses() {
                    return Err(SimError::BusOverflow {
                        row: inst.pe.row,
                        cycle: t,
                        words: *e,
                        capacity: ctx.buses().read_buses(),
                    });
                }
            }
            if inst.is_store() {
                let e = bus_write.entry((inst.pe.row, t)).or_default();
                *e += 1;
                if *e > ctx.buses().write_buses() {
                    return Err(SimError::BusOverflow {
                        row: inst.pe.row,
                        cycle: t,
                        words: *e,
                        capacity: ctx.buses().write_buses(),
                    });
                }
            }
        }

        // Execute.
        let read = |o: &SrcOperand| -> i32 {
            match *o {
                SrcOperand::Inst(p) => values[p.index()],
                SrcOperand::PairOf(p) => pair_values[p.index()],
                SrcOperand::Const(c) => c,
                SrcOperand::Param(p) => params.get(p as usize),
            }
        };
        match inst.op {
            OpKind::Load => {
                let a = &inst.loads[0];
                values[i] = input.read(a.array as usize, a.addr as usize);
                if let Some(a2) = inst.loads.get(1) {
                    pair_values[i] = input.read(a2.array as usize, a2.addr as usize);
                }
            }
            OpKind::Store => {
                let v = read(&inst.operands[0]);
                let a = inst.store.expect("store instance has address");
                memory.write(a.array as usize, a.addr as usize, v);
                values[i] = v;
            }
            op => {
                let a = inst.operands.first().map(&read).unwrap_or(0);
                let b = inst.operands.get(1).map(&read).unwrap_or(0);
                values[i] = apply_op(op, a, b);
            }
        }

        if opts.record_trace {
            events.push(TraceEvent {
                cycle: t,
                pe: inst.pe,
                instance: i as u32,
                op: inst.op,
                value: values[i],
                resource: bindings[i],
                latency: arch.op_latency(inst.op),
            });
        }
    }

    // Total cycles include the drain of the last operation's pipeline.
    let cycles = order
        .iter()
        .map(|&i| schedule[i] + latency(i))
        .max()
        .unwrap_or(0);

    Ok(SimReport {
        cycles,
        refill_stalls: 0,
        memory,
        ops_executed: n,
        shared_issues,
        max_in_flight,
        trace: opts.record_trace.then(|| Trace::new(events, cycles + 1)),
    })
}

/// Simulates a `(schedule, bindings)` pair whose configuration stream is
/// loaded per `plan`: the compact schedule is stretched onto the
/// executed timeline ([`RefillPlan::stalled_schedule`]) so every refill
/// stall becomes an explicit idle window, and the structural rules are
/// checked on that timeline. Memory effects are bit-identical to the
/// compact schedule's — refill stalls only delay, they never reorder —
/// so the [`rsp_kernel::evaluate`] oracle holds for split schedules
/// exactly as it does for fitting ones. The report counts the stall
/// cycles and, when tracing, the [`Trace`] exposes the refill windows.
///
/// # Errors
///
/// See [`simulate`]; additionally, a `plan` whose segments do not cover
/// the schedule's cycle span (it was built for a different schedule) is
/// a [`SimError::ShapeMismatch`].
#[allow(clippy::too_many_arguments)] // the full hardware state is the point
pub fn simulate_split(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    schedule: &[u32],
    bindings: &[Option<SharedResourceId>],
    plan: &RefillPlan,
    kernel: &Kernel,
    input: &MemoryImage,
    params: &Bindings,
    opts: &SimOptions,
) -> Result<SimReport, SimError> {
    if schedule.len() != ctx.instances().len() {
        return Err(SimError::ShapeMismatch {
            expected: ctx.instances().len(),
            actual: schedule.len(),
        });
    }
    // The plan must cover the schedule it is applied to: a plan built
    // for a shorter schedule cannot place the later cycles in any
    // segment. Reported as a shape mismatch (planned vs actual cycle
    // span) rather than panicking inside `RefillPlan::stalled_cycle`.
    let total = schedule.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
    let planned = plan.segments().last().map_or(0, |s| s.end_cycle as usize);
    if total > planned {
        return Err(SimError::ShapeMismatch {
            expected: planned,
            actual: total,
        });
    }
    let stalled = plan.stalled_schedule(schedule);
    let mut report = simulate(ctx, arch, &stalled, bindings, kernel, input, params, opts)?;
    report.refill_stalls = plan.total_refill_cycles();
    if let Some(trace) = &mut report.trace {
        trace.set_refill_windows(plan.stall_windows());
    }
    Ok(report)
}

/// Simulates a rearranged context (schedule + bindings from `rsp-core`),
/// executing its [`RefillPlan`]: split schedules run with explicit
/// refill-stall windows, fitting schedules run unchanged.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_rearranged(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    rearranged: &Rearranged,
    kernel: &Kernel,
    input: &MemoryImage,
    params: &Bindings,
) -> Result<SimReport, SimError> {
    simulate_split(
        ctx,
        arch,
        &rearranged.cycles,
        &rearranged.bindings,
        &rearranged.refill,
        kernel,
        input,
        params,
        &SimOptions::default(),
    )
}

/// Simulates the base schedule on the base architecture (no sharing, unit
/// latencies).
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_base(
    ctx: &ConfigContext,
    arch: &RspArchitecture,
    kernel: &Kernel,
    input: &MemoryImage,
    params: &Bindings,
) -> Result<SimReport, SimError> {
    let bindings = vec![None; ctx.instances().len()];
    simulate(
        ctx,
        arch,
        ctx.cycles(),
        &bindings,
        kernel,
        input,
        params,
        &SimOptions::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::presets;
    use rsp_core::rearrange;
    use rsp_kernel::{evaluate, suite};
    use rsp_mapper::{map, MapOptions};

    fn setup(kernel: &Kernel) -> (ConfigContext, MemoryImage, Bindings) {
        let ctx = map(presets::base_8x8().base(), kernel, &MapOptions::default()).unwrap();
        let img = MemoryImage::random(kernel, 0xC0FFEE);
        let params = Bindings::defaults(kernel);
        (ctx, img, params)
    }

    #[test]
    fn base_simulation_matches_reference_for_all_kernels() {
        for k in suite::all() {
            let (ctx, img, params) = setup(&k);
            let report = simulate_base(&ctx, &presets::base_8x8(), &k, &img, &params)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            let reference = evaluate(&k, &img, &params).unwrap();
            assert_eq!(report.memory, reference, "{}", k.name());
            assert_eq!(report.shared_issues, 0);
        }
    }

    #[test]
    fn rearranged_simulation_matches_reference_everywhere() {
        for k in suite::all() {
            let (ctx, img, params) = setup(&k);
            let reference = evaluate(&k, &img, &params).unwrap();
            for arch in presets::table_architectures() {
                let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
                let report = simulate_rearranged(&ctx, &arch, &r, &k, &img, &params)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", k.name(), arch.name()));
                assert_eq!(report.memory, reference, "{} on {}", k.name(), arch.name());
            }
        }
    }

    #[test]
    fn pipelined_resources_overlap_in_flight() {
        // The Fig. 6 effect: a 2-stage shared multiplier holds two
        // multiplications simultaneously somewhere in a busy kernel.
        let k = suite::matmul(8);
        let (ctx, img, params) = setup(&k);
        let arch = presets::rsp1();
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        let report = simulate_rearranged(&ctx, &arch, &r, &k, &img, &params).unwrap();
        assert_eq!(report.max_in_flight, 2);
        // And with combinational sharing it never exceeds one.
        let rs = rearrange(&ctx, &presets::rs1(), &Default::default()).unwrap();
        let report = simulate_rearranged(&ctx, &presets::rs1(), &rs, &k, &img, &params).unwrap();
        assert!(report.max_in_flight <= 1);
    }

    #[test]
    fn tampered_schedule_is_caught() {
        let k = suite::mvm();
        let (ctx, img, params) = setup(&k);
        let arch = presets::rsp2();
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();

        // Pull a dependent operation one cycle early.
        let mut bad = r.cycles.clone();
        let victim = ctx
            .instances()
            .iter()
            .find(|i| !i.preds.is_empty())
            .unwrap()
            .id
            .index();
        bad[victim] = r.cycles[ctx.instances()[victim].preds[0].index()];
        let err = simulate(
            &ctx,
            &arch,
            &bad,
            &r.bindings,
            &k,
            &img,
            &params,
            &Default::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::OperandNotReady { .. } | SimError::PeConflict { .. }
        ));
    }

    #[test]
    fn stripped_bindings_are_caught() {
        let k = suite::mvm();
        let (ctx, img, params) = setup(&k);
        let arch = presets::rs1();
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        let no_bindings = vec![None; ctx.instances().len()];
        let err = simulate(
            &ctx,
            &arch,
            &r.cycles,
            &no_bindings,
            &k,
            &img,
            &params,
            &Default::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::UnboundSharedOp { .. }));
    }

    #[test]
    fn foreign_binding_is_caught() {
        let k = suite::mvm();
        let (ctx, img, params) = setup(&k);
        let arch = presets::rs1();
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        let mut bad = r.bindings.clone();
        // Rebind some mult to a resource in the wrong row.
        let (idx, inst) = ctx
            .instances()
            .iter()
            .enumerate()
            .find(|(_, i)| i.op == OpKind::Mult)
            .unwrap();
        bad[idx] = Some(SharedResourceId::Row {
            kind: rsp_arch::FuKind::Multiplier,
            row: (inst.pe.row + 1) % 8,
            index: 0,
        });
        let err = simulate(
            &ctx,
            &arch,
            &r.cycles,
            &bad,
            &k,
            &img,
            &params,
            &Default::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::UnreachableResource { .. }));
    }

    #[test]
    fn double_issue_is_caught() {
        let k = suite::matmul(8);
        let (ctx, img, params) = setup(&k);
        let arch = presets::rs2();
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        // Force two mults bound to different resources onto one resource.
        let mut bad = r.bindings.clone();
        let mut mult_pairs: HashMap<(u32, usize), Vec<usize>> = HashMap::new();
        for (i, inst) in ctx.instances().iter().enumerate() {
            if inst.op == OpKind::Mult {
                mult_pairs
                    .entry((r.cycles[i], inst.pe.row))
                    .or_default()
                    .push(i);
            }
        }
        let clash = mult_pairs.values().find(|v| v.len() >= 2);
        if let Some(pair) = clash {
            bad[pair[1]] = bad[pair[0]];
            let err = simulate(
                &ctx,
                &arch,
                &r.cycles,
                &bad,
                &k,
                &img,
                &params,
                &Default::default(),
            )
            .unwrap_err();
            assert!(matches!(err, SimError::SharedIssueConflict { .. }));
        }
    }

    #[test]
    fn strict_buses_flag_detects_soft_schedules() {
        let k = suite::matmul(8);
        let (ctx, img, params) = setup(&k);
        let arch = presets::base_8x8();
        let bindings = vec![None; ctx.instances().len()];
        let err = simulate(
            &ctx,
            &arch,
            ctx.cycles(),
            &bindings,
            &k,
            &img,
            &params,
            &SimOptions {
                check_buses: true,
                ..Default::default()
            },
        );
        assert!(matches!(err, Err(SimError::BusOverflow { .. })));
    }

    #[test]
    fn unroutable_dependence_detected() {
        // Relocate a producer to a diagonal PE: the row/column
        // interconnect cannot deliver its result.
        let k = suite::iccg();
        let (ctx, img, params) = setup(&k);
        let arch = presets::base_8x8();
        let mut moved = ctx.clone();
        // Serialize-and-patch: rebuild the context with one PE moved via
        // its serde form (ConfigContext fields are private).
        let mut v: serde_json::Value = serde_json::to_value(&moved).unwrap();
        let insts = v["instances"].as_array_mut().unwrap();
        // Find a consumer with a predecessor and move the producer
        // diagonally away from it.
        let (prod_idx, cons_pe) = {
            let cons = ctx
                .instances()
                .iter()
                .find(|i| !i.preds.is_empty())
                .unwrap();
            (cons.preds[0].index(), cons.pe)
        };
        insts[prod_idx]["pe"]["row"] = ((cons_pe.row + 1) % 8).into();
        insts[prod_idx]["pe"]["col"] = ((cons_pe.col + 1) % 8).into();
        moved = serde_json::from_value(v).unwrap();
        let bindings = vec![None; moved.instances().len()];
        let err = simulate(
            &moved,
            &arch,
            moved.cycles(),
            &bindings,
            &k,
            &img,
            &params,
            &Default::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SimError::UnroutableDependence { .. } | SimError::PeConflict { .. }
        ));
    }

    #[test]
    fn shape_mismatch_detected() {
        let k = suite::mvm();
        let (ctx, img, params) = setup(&k);
        let arch = presets::base_8x8();
        let err = simulate(
            &ctx,
            &arch,
            &[0, 1, 2],
            &[None, None, None],
            &k,
            &img,
            &params,
            &Default::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::ShapeMismatch { .. }));
    }

    #[test]
    fn split_schedule_memory_is_bit_identical_and_counts_stalls() {
        // Force a split of a fitting schedule through an artificially
        // small cache: memory must stay bit-identical to the evaluator
        // and the report must charge exactly the plan's stall cycles.
        use rsp_mapper::{min_splittable_depth, split_schedule};
        for k in [suite::sad(), suite::matmul(8), suite::fdct()] {
            let (ctx, img, params) = setup(&k);
            let reference = evaluate(&k, &img, &params).unwrap();
            for arch in [presets::base_8x8(), presets::rs1(), presets::rsp2()] {
                let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
                let lat = |i: usize| u32::from(arch.op_latency(ctx.instances()[i].op));
                // Smallest depth that still has a legal cut in every
                // window; bump toward thirds for multi-way splits.
                let depth = min_splittable_depth(&ctx, &r.cycles, lat)
                    .unwrap()
                    .max(r.total_cycles / 3)
                    .max(8);
                if depth >= r.total_cycles {
                    continue; // pipelined issues tile the schedule: unsplittable
                }
                let plan = split_schedule(&ctx, &r.cycles, lat, depth).unwrap();
                assert!(plan.is_split(), "{} on {}", k.name(), arch.name());
                let report = simulate_split(
                    &ctx,
                    &arch,
                    &r.cycles,
                    &r.bindings,
                    &plan,
                    &k,
                    &img,
                    &params,
                    &SimOptions {
                        record_trace: true,
                        ..Default::default()
                    },
                )
                .unwrap();
                assert_eq!(report.memory, reference, "{} on {}", k.name(), arch.name());
                assert_eq!(report.refill_stalls, plan.total_refill_cycles());
                assert!(report.cycles >= r.total_cycles + report.refill_stalls - 1);
                let trace = report.trace.unwrap();
                assert_eq!(trace.refill_windows(), plan.stall_windows());
                // No operation issues inside a refill window.
                for e in trace.events() {
                    assert!(
                        !trace.is_refill_cycle(e.cycle),
                        "{} issued during refill at cycle {}",
                        e.instance,
                        e.cycle
                    );
                }
            }
        }
    }

    #[test]
    fn mismatched_refill_plan_is_a_shape_error_not_a_panic() {
        // A plan built for a shorter schedule cannot place the longer
        // schedule's tail cycles in any segment: SimError, not a panic.
        use rsp_mapper::split_schedule;
        let k = suite::mvm();
        let (ctx, img, params) = setup(&k);
        let arch = presets::base_8x8();
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        let short: Vec<u32> = r.cycles.iter().map(|&c| c / 2).collect();
        let short_plan = split_schedule(&ctx, &short, |_| 1, 8).unwrap();
        let err = simulate_split(
            &ctx,
            &arch,
            &r.cycles, // longer than the plan covers
            &r.bindings,
            &short_plan,
            &k,
            &img,
            &params,
            &Default::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SimError::ShapeMismatch { .. }));
    }

    #[test]
    fn rearranged_split_schedules_pass_the_oracle() {
        // End-to-end: rearrange against architectures whose cache is too
        // small, so `rearrange` itself splits, and `simulate_rearranged`
        // executes the split plan.
        use rsp_arch::{BaseArchitecture, RspArchitecture};
        let k = suite::fdct();
        let (ctx, img, params) = setup(&k);
        let reference = evaluate(&k, &img, &params).unwrap();
        for big in [presets::rs1(), presets::rsp2()] {
            // Size the cache so rearrangement must split: just over half
            // the rearranged length, rounded up to a splittable depth.
            let probe = rearrange(&ctx, &big, &Default::default()).unwrap();
            let lat = |i: usize| u32::from(big.op_latency(ctx.instances()[i].op));
            let depth = rsp_mapper::min_splittable_depth(&ctx, &probe.cycles, lat)
                .unwrap()
                .max(probe.total_cycles / 2 + 1) as usize;
            assert!(depth < probe.total_cycles as usize, "{}", big.name());
            let b = big.base();
            let small = BaseArchitecture::new(b.geometry(), b.pe().clone(), b.buses(), depth);
            let arch =
                RspArchitecture::new(big.name().to_string(), small, big.plan().clone()).unwrap();
            let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
            assert!(r.refill.is_split(), "{}", arch.name());
            assert!(r.refill_stalls() > 0);
            let report = simulate_rearranged(&ctx, &arch, &r, &k, &img, &params).unwrap();
            assert_eq!(report.memory, reference, "{}", arch.name());
            assert_eq!(report.refill_stalls, r.refill_stalls());
        }
    }

    #[test]
    fn cycle_count_includes_pipeline_drain() {
        let k = suite::mvm();
        let (ctx, img, params) = setup(&k);
        let arch = presets::rsp2();
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        let report = simulate_rearranged(&ctx, &arch, &r, &k, &img, &params).unwrap();
        // The simulator's cycle count is within one drain cycle of the
        // scheduler's.
        assert!(report.cycles >= r.total_cycles - 1);
        assert!(report.cycles <= r.total_cycles + 1);
    }
}
