//! Execution traces: a per-cycle record of what the array did.
//!
//! The trace is the debugging artifact an RTL simulation would give you —
//! which PE executed what, which shared resource served which request at
//! which stage, and what every operation computed. Traces render as a
//! text waveform (one lane per active PE) or as machine-readable events.

use rsp_arch::{OpKind, PeId, SharedResourceId};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One executed operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Issue cycle.
    pub cycle: u32,
    /// Executing PE.
    pub pe: PeId,
    /// Instance index in the context.
    pub instance: u32,
    /// Operation.
    pub op: OpKind,
    /// Result value (primary output).
    pub value: i32,
    /// Shared resource serving the operation, if any.
    pub resource: Option<SharedResourceId>,
    /// Cycles the operation occupies its unit (pipeline stages).
    pub latency: u8,
}

/// A full execution trace, ordered by cycle.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    total_cycles: u32,
    /// Configuration-cache refill windows on the executed timeline, as
    /// `(first_stall_cycle, stall_cycles)` pairs (empty for schedules
    /// that fit the cache).
    refill_windows: Vec<(u32, u32)>,
}

impl Trace {
    pub(crate) fn new(mut events: Vec<TraceEvent>, total_cycles: u32) -> Self {
        events.sort_by_key(|e| (e.cycle, e.pe.row, e.pe.col));
        Self {
            events,
            total_cycles,
            refill_windows: Vec::new(),
        }
    }

    pub(crate) fn set_refill_windows(&mut self, windows: Vec<(u32, u32)>) {
        self.refill_windows = windows;
    }

    /// All events, cycle order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Configuration-cache refill windows on the executed timeline, as
    /// `(first_stall_cycle, stall_cycles)` pairs. Empty unless the
    /// schedule was split across cache refills.
    pub fn refill_windows(&self) -> &[(u32, u32)] {
        &self.refill_windows
    }

    /// Whether `cycle` falls inside a refill stall (the array is idle,
    /// reloading its configuration caches).
    pub fn is_refill_cycle(&self, cycle: u32) -> bool {
        self.refill_windows
            .iter()
            .any(|&(start, len)| cycle >= start && cycle < start + len)
    }

    /// Events of one cycle.
    pub fn at_cycle(&self, cycle: u32) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.cycle == cycle)
    }

    /// Total executed cycles.
    pub fn total_cycles(&self) -> u32 {
        self.total_cycles
    }

    /// Renders a waveform-style text view: one lane per PE that executed
    /// anything, one column per cycle, shared operations marked with `'`.
    /// When the trace carries refill windows, a `refill` lane marks every
    /// cache-reload stall cycle with `##`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::presets;
    /// use rsp_kernel::{suite, Bindings, MemoryImage};
    /// use rsp_mapper::{map, MapOptions};
    /// use rsp_sim::{simulate, SimOptions};
    ///
    /// let k = suite::mvm();
    /// let base = presets::base_8x8();
    /// let ctx = map(base.base(), &k, &MapOptions::default())?;
    /// let bindings = vec![None; ctx.instances().len()];
    /// let report = simulate(
    ///     &ctx, &base, ctx.cycles(), &bindings, &k,
    ///     &MemoryImage::random(&k, 1), &Bindings::defaults(&k),
    ///     &SimOptions { record_trace: true, ..Default::default() },
    /// )?;
    /// let text = report.trace.unwrap().render();
    /// assert!(text.contains("PE[0,0]"));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn render(&self) -> String {
        let mut lanes: Vec<PeId> = self.events.iter().map(|e| e.pe).collect();
        lanes.sort();
        lanes.dedup();

        let total = self.total_cycles as usize;
        let mut out = String::new();
        let _ = write!(out, "{:>9} |", "cycle");
        for t in 1..=total {
            let _ = write!(out, "{t:>5} |");
        }
        out.push('\n');
        if !self.refill_windows.is_empty() {
            let _ = write!(out, "{:>9} |", "refill");
            for t in 0..total as u32 {
                let cell = if self.is_refill_cycle(t) { "##" } else { "" };
                let _ = write!(out, "{cell:>5} |");
            }
            out.push('\n');
        }
        for pe in lanes {
            let mut cells = vec![String::new(); total];
            for e in self.events.iter().filter(|e| e.pe == pe) {
                let mut m = e.op.mnemonic().to_string();
                if e.resource.is_some() {
                    m.push('\'');
                }
                cells[e.cycle as usize] = m;
            }
            let _ = write!(out, "{:>9} |", pe.to_string());
            for c in &cells {
                let _ = write!(out, "{c:>5} |");
            }
            out.push('\n');
        }
        out
    }

    /// Peak concurrently-active PEs in any cycle.
    pub fn peak_parallelism(&self) -> usize {
        let mut per_cycle = vec![0usize; self.total_cycles as usize + 1];
        for e in &self.events {
            per_cycle[e.cycle as usize] += 1;
        }
        per_cycle.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u32, row: usize, col: usize, op: OpKind, value: i32) -> TraceEvent {
        TraceEvent {
            cycle,
            pe: PeId::new(row, col),
            instance: 0,
            op,
            value,
            resource: None,
            latency: 1,
        }
    }

    #[test]
    fn events_sorted_by_cycle() {
        let t = Trace::new(
            vec![
                ev(3, 0, 0, OpKind::Add, 1),
                ev(1, 0, 1, OpKind::Load, 2),
                ev(2, 1, 0, OpKind::Mult, 3),
            ],
            4,
        );
        let cycles: Vec<u32> = t.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![1, 2, 3]);
        assert_eq!(t.at_cycle(2).count(), 1);
    }

    #[test]
    fn render_marks_shared_operations() {
        let mut shared = ev(0, 0, 0, OpKind::Mult, 9);
        shared.resource = Some(SharedResourceId::Row {
            kind: rsp_arch::FuKind::Multiplier,
            row: 0,
            index: 0,
        });
        let t = Trace::new(vec![shared, ev(1, 0, 0, OpKind::Add, 1)], 2);
        let text = t.render();
        assert!(text.contains("*'"), "shared mult marked: {text}");
        assert!(text.contains('+'));
    }

    #[test]
    fn peak_parallelism_counts_concurrent_pes() {
        let t = Trace::new(
            vec![
                ev(0, 0, 0, OpKind::Load, 0),
                ev(0, 1, 0, OpKind::Load, 0),
                ev(0, 2, 0, OpKind::Load, 0),
                ev(1, 0, 0, OpKind::Add, 0),
            ],
            2,
        );
        assert_eq!(t.peak_parallelism(), 3);
    }
}
