//! Simulation errors: every structural rule the hardware would enforce.

use rsp_arch::{PeId, SharedResourceId};
use std::error::Error;
use std::fmt;

/// A structural violation detected while executing a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A consumer read a value before its producer's pipeline delivered it.
    OperandNotReady {
        /// Consumer instance index.
        consumer: usize,
        /// Producer instance index.
        producer: usize,
        /// Cycle of the attempted read.
        cycle: u32,
    },
    /// Two operations issued on one PE in one cycle.
    PeConflict {
        /// The PE.
        pe: PeId,
        /// The cycle.
        cycle: u32,
    },
    /// An operation on a shared kind has no resource binding.
    UnboundSharedOp {
        /// Instance index.
        instance: usize,
    },
    /// A binding routes to a resource the PE cannot reach.
    UnreachableResource {
        /// Instance index.
        instance: usize,
        /// The bound resource.
        resource: SharedResourceId,
    },
    /// Two issues on one shared resource in one cycle.
    SharedIssueConflict {
        /// The resource.
        resource: SharedResourceId,
        /// The cycle.
        cycle: u32,
    },
    /// Row-bus words exceeded capacity (strict bus mode).
    BusOverflow {
        /// The row.
        row: usize,
        /// The cycle.
        cycle: u32,
        /// Words requested.
        words: usize,
        /// Capacity.
        capacity: usize,
    },
    /// The schedule length does not match the context.
    ShapeMismatch {
        /// Expected instance count.
        expected: usize,
        /// Supplied schedule length.
        actual: usize,
    },
    /// A dependence crosses PEs that share no row/column interconnect.
    UnroutableDependence {
        /// Producer PE.
        from: PeId,
        /// Consumer PE.
        to: PeId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OperandNotReady {
                consumer,
                producer,
                cycle,
            } => write!(
                f,
                "instance {consumer} reads instance {producer} at cycle {cycle} before it is ready"
            ),
            SimError::PeConflict { pe, cycle } => {
                write!(f, "two operations on {pe} in cycle {cycle}")
            }
            SimError::UnboundSharedOp { instance } => {
                write!(
                    f,
                    "instance {instance} executes on a shared kind without a binding"
                )
            }
            SimError::UnreachableResource { instance, resource } => {
                write!(f, "instance {instance} bound to unreachable {resource}")
            }
            SimError::SharedIssueConflict { resource, cycle } => {
                write!(f, "two issues on {resource} in cycle {cycle}")
            }
            SimError::BusOverflow {
                row,
                cycle,
                words,
                capacity,
            } => write!(
                f,
                "row {row} moves {words} bus words in cycle {cycle}, capacity {capacity}"
            ),
            SimError::ShapeMismatch { expected, actual } => {
                write!(f, "schedule has {actual} entries for {expected} instances")
            }
            SimError::UnroutableDependence { from, to } => {
                write!(f, "no interconnect from {from} to {to}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        let errs = [
            SimError::OperandNotReady {
                consumer: 1,
                producer: 0,
                cycle: 2,
            },
            SimError::PeConflict {
                pe: PeId::new(0, 0),
                cycle: 0,
            },
            SimError::UnboundSharedOp { instance: 3 },
            SimError::SharedIssueConflict {
                resource: SharedResourceId::Row {
                    kind: rsp_arch::FuKind::Multiplier,
                    row: 0,
                    index: 0,
                },
                cycle: 5,
            },
            SimError::ShapeMismatch {
                expected: 4,
                actual: 2,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
