//! # rsp-sim — cycle-accurate structural simulation
//!
//! Executes a scheduled configuration context on an RSP architecture,
//! cycle by cycle, with real 16-bit data. It stands in for the paper's RTL
//! simulation: every structural rule of the hardware is checked while the
//! computation runs —
//!
//! * operand availability (producer cycle + pipeline latency),
//! * one operation per PE per cycle,
//! * shared operations must carry a binding to a *reachable* resource and
//!   each shared resource accepts one issue per cycle (multiple operations
//!   may be in flight in different pipeline stages),
//! * optionally, row-bus capacities.
//!
//! The simulator's final memory image must be bit-identical to the
//! reference evaluator's ([`rsp_kernel::evaluate`]) for every legal
//! schedule — the strongest functional oracle in this reproduction.
//!
//! # Configuration-cache refill
//!
//! Schedules deeper than the per-PE configuration cache arrive split
//! into cache-sized segments (`rsp_mapper::RefillPlan`, built by the
//! mapper's `split_schedule` and carried on `rsp_core::Rearranged`).
//! [`simulate_split`] executes them on the *stalled* timeline: each
//! segment after the first is preceded by an idle refill window of one
//! cycle per context word (the cost the plan derived from the
//! `ConfigImage` byte size), during which no operation issues. Because
//! a legal cut point has nothing in flight, PE registers and memory
//! simply persist across the window, so the final memory image stays
//! bit-identical to the compact schedule's — and to
//! [`rsp_kernel::evaluate`]. [`SimReport::refill_stalls`] counts the
//! stall cycles and [`Trace::refill_windows`] exposes the windows.
//!
//! # Examples
//!
//! ```
//! use rsp_arch::presets;
//! use rsp_core::rearrange;
//! use rsp_kernel::{evaluate, suite, Bindings, MemoryImage};
//! use rsp_mapper::{map, MapOptions};
//! use rsp_sim::simulate_rearranged;
//!
//! let kernel = suite::matmul(4);
//! let base = presets::fig1_4x4();
//! let ctx = map(base.base(), &kernel, &MapOptions::default())?;
//! let arch = rsp_arch::presets::shared_multiplier("RSP", 4, 4, 1, 0, 2);
//! let r = rearrange(&ctx, &arch, &Default::default())?;
//!
//! let input = MemoryImage::random(&kernel, 7);
//! let params = Bindings::defaults(&kernel);
//! let report = simulate_rearranged(&ctx, &arch, &r, &kernel, &input, &params)?;
//!
//! let reference = evaluate(&kernel, &input, &params)?;
//! assert_eq!(report.memory, reference);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod sim;
mod trace;

pub use error::SimError;
pub use sim::{
    simulate, simulate_base, simulate_rearranged, simulate_split, SimOptions, SimReport,
};
pub use trace::{Trace, TraceEvent};
