//! Pretty-printer: renders a [`Kernel`] in the textual DFG format.
//!
//! The printer emits the *canonical* form — quoted kernel name, every
//! scalar section present, full four-term address expressions — which the
//! parser round-trips exactly ([`parse_kernel`](crate::parse_kernel)`(`[`print_kernel`]`(k)) == k`
//! for every valid kernel, property-tested in `tests/roundtrip.rs`).

use rsp_arch::OpKind;
use rsp_kernel::{AddrExpr, Dfg, Kernel, Operand};
use std::fmt::Write as _;

/// The textual keyword of an operation kind (lower-case mnemonic set).
pub(crate) fn op_keyword(op: OpKind) -> &'static str {
    match op {
        OpKind::Add => "add",
        OpKind::Sub => "sub",
        OpKind::Abs => "abs",
        OpKind::Min => "min",
        OpKind::Max => "max",
        OpKind::And => "and",
        OpKind::Or => "or",
        OpKind::Xor => "xor",
        OpKind::Shl => "shl",
        OpKind::Shr => "shr",
        OpKind::Asr => "asr",
        OpKind::Mult => "mult",
        OpKind::Load => "load",
        OpKind::Store => "store",
        OpKind::Mov => "mov",
        OpKind::Nop => "nop",
    }
}

/// Whether a name can be printed as a bare identifier
/// (`[A-Za-z_][A-Za-z0-9_]*`); anything else is printed quoted.
pub(crate) fn ident_safe(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a string for a quoted literal (`"` and `\` are escaped; tabs
/// and newlines become `\t` / `\n`).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

fn name_token(name: &str) -> String {
    if ident_safe(name) {
        name.to_string()
    } else {
        format!("\"{}\"", escape(name))
    }
}

fn addr_text(kernel: &Kernel, a: &AddrExpr) -> String {
    let name = &kernel.arrays()[a.array.index()].name;
    format!(
        "{}[{} + {}*i + {}*j + {}*s]",
        name_token(name),
        a.base,
        a.coef_div,
        a.coef_mod,
        a.coef_step
    )
}

fn operand_text(kernel: &Kernel, o: &Operand) -> String {
    match *o {
        Operand::Node(n) => format!("n{}", n.0),
        Operand::Pair(n) => format!("n{}.hi", n.0),
        Operand::Const(c) => format!("#{c}"),
        Operand::Param(p) => {
            let name = &kernel.params()[p.index()].name;
            format!("${}", name_token(name))
        }
        Operand::Accum { node, init } => format!("acc(n{}, {init})", node.0),
        Operand::Carry(n) => format!("carry(n{})", n.0),
    }
}

fn write_dfg(out: &mut String, kernel: &Kernel, label: &str, dfg: &Dfg) {
    let _ = writeln!(out, "  {label} {{");
    for (id, node) in dfg.iter() {
        let _ = write!(out, "    n{} = {}", id.0, op_keyword(node.op()));
        let mut args: Vec<String> = Vec::new();
        if let Some(a) = node.addr() {
            args.push(addr_text(kernel, a));
        }
        if let Some(a2) = node.addr2() {
            args.push(addr_text(kernel, a2));
        }
        for o in node.operands() {
            args.push(operand_text(kernel, o));
        }
        if !args.is_empty() {
            let _ = write!(out, " {}", args.join(", "));
        }
        out.push('\n');
    }
    let _ = writeln!(out, "  }}");
}

/// Renders a kernel in the canonical textual DFG format.
///
/// The output parses back to an identical [`Kernel`]:
/// `parse_kernel(&print_kernel(&k)).unwrap() == k`.
///
/// # Examples
///
/// ```
/// use rsp_workload::{parse_kernel, print_kernel};
///
/// let k = rsp_kernel::suite::sad();
/// let text = print_kernel(&k);
/// assert!(text.starts_with("kernel \"SAD\""));
/// assert_eq!(parse_kernel(&text).unwrap(), k);
/// ```
pub fn print_kernel(kernel: &Kernel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kernel \"{}\" {{", escape(kernel.name()));
    if !kernel.description().is_empty() {
        let _ = writeln!(out, "  description \"{}\"", escape(kernel.description()));
    }
    let _ = writeln!(out, "  elements {}", kernel.elements());
    let _ = writeln!(out, "  steps {}", kernel.steps());
    let _ = writeln!(out, "  divisor {}", kernel.elem_divisor());
    let _ = writeln!(out, "  style {}", kernel.style());
    for a in kernel.arrays() {
        let _ = writeln!(out, "  array {}[{}]", name_token(&a.name), a.len);
    }
    for p in kernel.params() {
        let _ = writeln!(out, "  param {} = {}", name_token(&p.name), p.default);
    }
    write_dfg(&mut out, kernel, "body", kernel.body());
    if let Some(tail) = kernel.tail() {
        write_dfg(&mut out, kernel, "tail", tail);
    }
    out.push_str("}\n");
    out
}
