//! Parse diagnostics for the textual DFG format.

use std::fmt;

/// A parse diagnostic carrying a 1-based line/column source position.
///
/// # Examples
///
/// ```
/// let err = rsp_workload::parse_kernel("kernel \"x\" {").unwrap_err();
/// assert_eq!(err.line, 1);
/// assert!(err.to_string().contains("line 1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the offending token.
    pub line: u32,
    /// 1-based source column of the offending token.
    pub col: u32,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: u32, col: u32, message: impl Into<String>) -> Self {
        Self {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}
