//! Seeded random-DFG kernel generator — valid by construction.
//!
//! The generator draws a kernel shape (style, iteration space, graph
//! size) and then builds the graph so that every [`Kernel`] invariant
//! holds structurally instead of by rejection sampling:
//!
//! * operands only reference earlier nodes; `.hi` operands only
//!   reference dual loads;
//! * load addresses use non-negative affine coefficients and each input
//!   array's length is computed *after* the fact as the maximum address
//!   reached over the whole iteration space — no out-of-bounds access
//!   can exist;
//! * every store writes its own dedicated output array at an address
//!   that is unique per `(element, step)` (`steps·e + s`), so the final
//!   memory image is independent of execution order — the property the
//!   simulator-vs-evaluator oracle relies on;
//! * dataflow-style kernels have one step, no tail, and no accumulators
//!   (the mapper's shape requirements).
//!
//! The same seed always produces the same kernel (the vendored
//! deterministic `StdRng`), which is what lets seeded random workloads
//! be committed under `workloads/` and regenerated bit-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsp_arch::OpKind;
use rsp_kernel::{
    AddrExpr, ArrayId, DfgBuilder, Kernel, KernelBuilder, MappingStyle, NodeId, Operand,
};

/// Shape limits for [`random_kernel`].
#[derive(Debug, Clone)]
pub struct RandomKernelConfig {
    /// Maximum independent elements (at least 1 is drawn).
    pub max_elements: usize,
    /// Maximum sequential steps per element (lockstep kernels only).
    pub max_steps: usize,
    /// Maximum compute operations between the loads and the stores.
    pub max_compute_ops: usize,
    /// Maximum input arrays.
    pub max_arrays: usize,
    /// Maximum loop-invariant scalar parameters.
    pub max_params: usize,
    /// Whether dataflow-style kernels may be drawn.
    pub allow_dataflow: bool,
}

impl Default for RandomKernelConfig {
    fn default() -> Self {
        Self {
            max_elements: 64,
            max_steps: 4,
            max_compute_ops: 10,
            max_arrays: 3,
            max_params: 3,
            allow_dataflow: true,
        }
    }
}

/// Operations the generator draws for compute nodes (memory operations
/// and `Nop` are placed structurally, not drawn).
const COMPUTE_OPS: [OpKind; 13] = [
    OpKind::Add,
    OpKind::Sub,
    OpKind::Mult,
    OpKind::Min,
    OpKind::Max,
    OpKind::And,
    OpKind::Or,
    OpKind::Xor,
    OpKind::Shl,
    OpKind::Shr,
    OpKind::Asr,
    OpKind::Abs,
    OpKind::Mov,
];

struct Shape {
    elements: usize,
    steps: usize,
    divisor: usize,
}

impl Shape {
    /// The largest address an affine expression with these coefficients
    /// reaches over the whole iteration space (coefficients are
    /// non-negative, so the maximum is at the extreme indices).
    fn max_addr(&self, base: i64, cd: i64, cm: i64, cs: i64) -> i64 {
        let max_div = ((self.elements - 1) / self.divisor) as i64;
        let max_mod = (self.divisor.min(self.elements) - 1) as i64;
        let max_step = (self.steps - 1) as i64;
        base + cd * max_div + cm * max_mod + cs * max_step
    }
}

/// Generates a random, validated kernel from `seed` under `cfg` limits.
///
/// Deterministic: the same `(seed, cfg)` always yields the same kernel.
///
/// # Examples
///
/// ```
/// use rsp_workload::{random_kernel, RandomKernelConfig};
///
/// let cfg = RandomKernelConfig::default();
/// let a = random_kernel(7, &cfg);
/// let b = random_kernel(7, &cfg);
/// assert_eq!(a, b);
/// assert!(a.total_ops() > 0);
/// ```
pub fn random_kernel(seed: u64, cfg: &RandomKernelConfig) -> Kernel {
    let mut rng = StdRng::seed_from_u64(seed);

    let dataflow = cfg.allow_dataflow && rng.gen_range(0..2) == 0;
    let shape = Shape {
        elements: rng.gen_range(1..=cfg.max_elements.max(1)),
        steps: if dataflow {
            1
        } else {
            rng.gen_range(1..=cfg.max_steps.max(1))
        },
        divisor: rng.gen_range(1..=4),
    };
    let n_inputs = rng.gen_range(1..=cfg.max_arrays.max(1));
    let n_params = rng.gen_range(0..=cfg.max_params);
    let n_loads = rng.gen_range(1..=3usize);
    let n_ops = rng.gen_range(1..=cfg.max_compute_ops.max(1));
    let n_body_stores = if dataflow {
        rng.gen_range(1..=2usize)
    } else {
        1
    };
    let has_tail = !dataflow && rng.gen_range(0..2) == 0;
    let n_tail_ops = if has_tail {
        rng.gen_range(0..=2usize)
    } else {
        0
    };

    // Array ids are assigned in declaration order: inputs, body-store
    // outputs, then the tail output.
    let input_id = |a: usize| ArrayId(a as u32);
    let output_id = |s: usize| ArrayId((n_inputs + s) as u32);
    let tail_output_id = ArrayId((n_inputs + n_body_stores) as u32);

    // Draw the load addresses first so input lengths can be sized to the
    // maximum address each array actually sees.
    let mut input_max: Vec<i64> = vec![0; n_inputs];
    let draw_addr = |rng: &mut StdRng, input_max: &mut Vec<i64>| {
        let a = rng.gen_range(0..n_inputs);
        let (base, cd, cm, cs) = (
            rng.gen_range(0..=3i64),
            rng.gen_range(0..=2i64),
            rng.gen_range(0..=2i64),
            rng.gen_range(0..=2i64),
        );
        input_max[a] = input_max[a].max(shape.max_addr(base, cd, cm, cs));
        AddrExpr::affine(input_id(a), base, cd, cm, cs)
    };
    enum LoadSpec {
        Single(AddrExpr),
        Dual(AddrExpr, AddrExpr),
    }
    let loads: Vec<LoadSpec> = (0..n_loads)
        .map(|_| {
            if rng.gen_range(0..2) == 0 {
                LoadSpec::Dual(
                    draw_addr(&mut rng, &mut input_max),
                    draw_addr(&mut rng, &mut input_max),
                )
            } else {
                LoadSpec::Single(draw_addr(&mut rng, &mut input_max))
            }
        })
        .collect();

    let mut kb = KernelBuilder::new(format!("rand_{seed:x}"), shape.elements);
    for (a, max) in input_max.iter().enumerate() {
        kb.array(format!("a{a}"), (*max as usize) + 1);
    }
    for s in 0..n_body_stores {
        kb.array(format!("o{s}"), shape.elements * shape.steps);
    }
    if has_tail {
        kb.array("to", shape.elements);
    }
    let params: Vec<_> = (0..n_params)
        .map(|p| kb.param(format!("c{p}"), rng.gen_range(-8..=8)))
        .collect();

    // Body: loads, compute nodes, stores.
    let mut b = DfgBuilder::new();
    let mut dual_loads: Vec<NodeId> = Vec::new();
    for spec in &loads {
        match spec {
            LoadSpec::Single(a) => {
                b.load(*a);
            }
            LoadSpec::Dual(a, a2) => dual_loads.push(b.load_pair(*a, *a2)),
        }
    }
    let mut count = n_loads;
    let pick_operand = |rng: &mut StdRng, defined: usize, dual_loads: &[NodeId]| -> Operand {
        match rng.gen_range(0..6) {
            0 if !dual_loads.is_empty() => {
                Operand::Pair(dual_loads[rng.gen_range(0..dual_loads.len())])
            }
            1 => Operand::Const(rng.gen_range(-8..=8)),
            2 if !params.is_empty() => Operand::Param(params[rng.gen_range(0..params.len())]),
            _ => Operand::Node(NodeId(rng.gen_range(0..defined) as u32)),
        }
    };
    for _ in 0..n_ops {
        if !dataflow && rng.gen_range(0..4) == 0 {
            let value = pick_operand(&mut rng, count, &dual_loads);
            b.accum_add(value, rng.gen_range(-4..=4));
        } else {
            let op = COMPUTE_OPS[rng.gen_range(0..COMPUTE_OPS.len())];
            let operands = (0..op.arity())
                .map(|_| pick_operand(&mut rng, count, &dual_loads))
                .collect();
            b.op(op, operands);
        }
        count += 1;
    }
    // Each store gets its own output array at an address unique per
    // (element, step): steps·d·(e/d) + steps·(e%d) + s = steps·e + s.
    let store_addr = |array: ArrayId| {
        AddrExpr::affine(
            array,
            0,
            (shape.steps * shape.divisor) as i64,
            shape.steps as i64,
            1,
        )
    };
    let body_len = count + n_body_stores;
    for s in 0..n_body_stores {
        let value = Operand::Node(NodeId(rng.gen_range(0..count) as u32));
        b.store(store_addr(output_id(s)), value);
    }

    let mut kb = kb
        .steps(shape.steps)
        .elem_divisor(shape.divisor)
        .style(if dataflow {
            MappingStyle::Dataflow
        } else {
            MappingStyle::Lockstep
        })
        .description(format!("seeded random DFG (seed {seed:#x})"))
        .body(b.finish());

    if has_tail {
        let mut t = DfgBuilder::new();
        let mut tail_count = 0usize;
        let pick_tail_operand = |rng: &mut StdRng, defined: usize| -> Operand {
            match rng.gen_range(0..4) {
                0 => Operand::Carry(NodeId(rng.gen_range(0..body_len) as u32)),
                1 => Operand::Const(rng.gen_range(-8..=8)),
                2 if !params.is_empty() => Operand::Param(params[rng.gen_range(0..params.len())]),
                _ if defined > 0 => Operand::Node(NodeId(rng.gen_range(0..defined) as u32)),
                _ => Operand::Carry(NodeId(rng.gen_range(0..body_len) as u32)),
            }
        };
        for _ in 0..n_tail_ops {
            let op = COMPUTE_OPS[rng.gen_range(0..COMPUTE_OPS.len())];
            let operands = (0..op.arity())
                .map(|_| pick_tail_operand(&mut rng, tail_count))
                .collect();
            t.op(op, operands);
            tail_count += 1;
        }
        let value = pick_tail_operand(&mut rng, tail_count);
        // The tail stores once per element at address e = d·(e/d) + (e%d).
        t.store(
            AddrExpr::affine(tail_output_id, 0, shape.divisor as i64, 1, 0),
            value,
        );
        kb = kb.tail(t.finish());
    }

    kb.build().expect("random kernel is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let cfg = RandomKernelConfig::default();
        for seed in 0..20 {
            assert_eq!(random_kernel(seed, &cfg), random_kernel(seed, &cfg));
        }
    }

    #[test]
    fn many_seeds_build_valid_kernels() {
        // `build()` inside the generator re-validates every invariant;
        // reaching here means validity held for each shape drawn.
        let cfg = RandomKernelConfig::default();
        for seed in 0..200 {
            let k = random_kernel(seed, &cfg);
            assert!(k.total_ops() > 0);
            if k.style() == MappingStyle::Dataflow {
                assert_eq!(k.steps(), 1);
                assert!(k.tail().is_none());
            }
        }
    }

    #[test]
    fn seeds_differ() {
        let cfg = RandomKernelConfig::default();
        assert_ne!(random_kernel(1, &cfg), random_kernel(2, &cfg));
    }
}
