//! Regenerates the committed `workloads/` directory from the fixed
//! registry ([`rsp_workload::registry`]) and canonicalizes hand-written
//! workload files.
//!
//! ```sh
//! cargo run -p rsp-workload --bin workloadgen                 # writes workloads/
//! cargo run -p rsp-workload --bin workloadgen -- --out DIR    # custom directory
//! cargo run -p rsp-workload --bin workloadgen -- --check      # verify, write nothing
//! cargo run -p rsp-workload --bin workloadgen -- --fmt FILE…  # canonicalize in place
//! cargo run -p rsp-workload --bin workloadgen -- --fmt --check FILE…
//! ```
//!
//! `--check` exits non-zero when any committed file differs from its
//! regenerated form (the same comparison the test suite performs).
//!
//! `--fmt` is the *workloadfmt* mode: each named file is parsed with the
//! liberal grammar (term omission/reordering in addresses, bare names,
//! comments) and rewritten in the canonical form the printer emits — the
//! form the round-trip property tests cover. With `--check` it only
//! reports files that are not canonical, rewriting nothing. Parse errors
//! print the file name plus the 1-based line/column diagnostic and fail
//! the run.

use rsp_workload::{canonicalize, registry, render_workload_file};
use std::path::Path;
use std::process::ExitCode;

fn fmt_mode(files: &[String], check: bool) -> ExitCode {
    let mut bad = 0usize;
    for file in files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ERROR    {file}: {e}");
                bad += 1;
                continue;
            }
        };
        let canon = match canonicalize(&src) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("ERROR    {file}: {e}");
                bad += 1;
                continue;
            }
        };
        if canon == src {
            println!("ok       {file}");
        } else if check {
            println!("NONCANON {file}");
            bad += 1;
        } else if let Err(e) = std::fs::write(file, &canon) {
            eprintln!("ERROR    {file}: cannot rewrite: {e}");
            bad += 1;
        } else {
            println!("fmt      {file}");
        }
    }
    if bad > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut out_dir = "workloads".to_string();
    let mut check = false;
    let mut fmt = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(dir) => out_dir = dir,
                None => {
                    eprintln!("workloadgen: --out needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => check = true,
            "--fmt" => fmt = true,
            other if fmt && !other.starts_with("--") => files.push(other.to_string()),
            other => {
                eprintln!(
                    "workloadgen: unknown argument {other:?} (use --out DIR, --check, or --fmt FILE...)"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if fmt {
        if files.is_empty() {
            eprintln!("workloadgen: --fmt needs at least one file");
            return ExitCode::FAILURE;
        }
        return fmt_mode(&files, check);
    }

    let dir = Path::new(&out_dir);
    let mut drifted = 0usize;
    for kernel in registry() {
        let path = dir.join(format!("{}.dfg", kernel.name()));
        let content = render_workload_file(&kernel);
        if check {
            let on_disk = std::fs::read_to_string(&path).unwrap_or_default();
            if on_disk == content {
                println!("ok       {}", path.display());
            } else {
                drifted += 1;
                eprintln!("DRIFTED  {}", path.display());
            }
        } else {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!(
                    "workloadgen: cannot create output directory {}: {e}",
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(&path, &content) {
                eprintln!("workloadgen: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote    {}", path.display());
        }
    }
    if drifted > 0 {
        eprintln!("{drifted} workload file(s) drifted — regenerate with `cargo run -p rsp-workload --bin workloadgen`");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
