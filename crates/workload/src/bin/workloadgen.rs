//! Regenerates the committed `workloads/` directory from the fixed
//! registry ([`rsp_workload::registry`]).
//!
//! ```sh
//! cargo run -p rsp-workload --bin workloadgen                 # writes workloads/
//! cargo run -p rsp-workload --bin workloadgen -- --out DIR    # custom directory
//! cargo run -p rsp-workload --bin workloadgen -- --check      # verify, write nothing
//! ```
//!
//! `--check` exits non-zero when any committed file differs from its
//! regenerated form (the same comparison the test suite performs).

use rsp_workload::{registry, render_workload_file};
use std::path::Path;

fn main() {
    let mut out_dir = "workloads".to_string();
    let mut check = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_dir = args.next().expect("--out needs a directory"),
            "--check" => check = true,
            other => panic!("unknown argument {other:?} (use --out DIR or --check)"),
        }
    }

    let dir = Path::new(&out_dir);
    let mut drifted = 0usize;
    for kernel in registry() {
        let path = dir.join(format!("{}.dfg", kernel.name()));
        let content = render_workload_file(&kernel);
        if check {
            let on_disk = std::fs::read_to_string(&path).unwrap_or_default();
            if on_disk == content {
                println!("ok       {}", path.display());
            } else {
                drifted += 1;
                eprintln!("DRIFTED  {}", path.display());
            }
        } else {
            std::fs::create_dir_all(dir).expect("create output directory");
            std::fs::write(&path, &content).expect("write workload file");
            println!("wrote    {}", path.display());
        }
    }
    if drifted > 0 {
        eprintln!("{drifted} workload file(s) drifted — regenerate with `cargo run -p rsp-workload --bin workloadgen`");
        std::process::exit(1);
    }
}
