//! Parser for the textual DFG format (grammar in the crate docs).
//!
//! Hand-rolled lexer + recursive-descent parser. Every diagnostic carries
//! the 1-based line/column of the offending token ([`ParseError`]). The
//! parser is deliberately more liberal than the canonical printer: address
//! terms may appear in any order and zero terms may be omitted
//! (`X[i + 3]` means `X[3 + 1*i + 0*j + 0*s]`), names may be bare
//! identifiers or quoted strings, and `//` starts a line comment.

use crate::error::ParseError;
use crate::print::op_keyword;
use rsp_arch::OpKind;
use rsp_kernel::{
    AddrExpr, ArrayId, Dfg, DfgBuilder, Kernel, KernelBuilder, MappingStyle, NodeId, Operand,
    ParamId,
};

#[derive(Debug, Clone, PartialEq)]
enum TokKind {
    Ident(String),
    Int(i64),
    Str(String),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Eq,
    Comma,
    Plus,
    Minus,
    Star,
    Dot,
    Hash,
    Dollar,
    Eof,
}

impl TokKind {
    fn describe(&self) -> String {
        match self {
            TokKind::Ident(s) => format!("identifier `{s}`"),
            TokKind::Int(v) => format!("integer `{v}`"),
            TokKind::Str(_) => "string literal".into(),
            TokKind::LBrace => "`{`".into(),
            TokKind::RBrace => "`}`".into(),
            TokKind::LBracket => "`[`".into(),
            TokKind::RBracket => "`]`".into(),
            TokKind::LParen => "`(`".into(),
            TokKind::RParen => "`)`".into(),
            TokKind::Eq => "`=`".into(),
            TokKind::Comma => "`,`".into(),
            TokKind::Plus => "`+`".into(),
            TokKind::Minus => "`-`".into(),
            TokKind::Star => "`*`".into(),
            TokKind::Dot => "`.`".into(),
            TokKind::Hash => "`#`".into(),
            TokKind::Dollar => "`$`".into(),
            TokKind::Eof => "end of input".into(),
        }
    }
}

#[derive(Debug, Clone)]
struct Tok {
    kind: TokKind,
    line: u32,
    col: u32,
}

fn lex(src: &str) -> Result<Vec<Tok>, ParseError> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let (mut line, mut col) = (1u32, 1u32);
    let mut i = 0usize;
    while i < chars.len() {
        let (l, c) = (line, col);
        let ch = chars[i];
        let advance = |i: &mut usize, col: &mut u32| {
            *i += 1;
            *col += 1;
        };
        match ch {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ch if ch.is_whitespace() => advance(&mut i, &mut col),
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '"' => {
                advance(&mut i, &mut col);
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(ParseError::new(l, c, "unterminated string literal")),
                        Some('\n') => {
                            return Err(ParseError::new(
                                l,
                                c,
                                "unterminated string literal (strings may not span lines)",
                            ))
                        }
                        Some('"') => {
                            advance(&mut i, &mut col);
                            break;
                        }
                        Some('\\') => {
                            advance(&mut i, &mut col);
                            let esc = chars.get(i).copied();
                            advance(&mut i, &mut col);
                            match esc {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                other => {
                                    return Err(ParseError::new(
                                        line,
                                        col - 1,
                                        format!(
                                            "unknown escape `\\{}`",
                                            other.map(String::from).unwrap_or_default()
                                        ),
                                    ))
                                }
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            advance(&mut i, &mut col);
                        }
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Str(s),
                    line: l,
                    col: c,
                });
            }
            ch if ch.is_ascii_digit() => {
                let mut v: i64 = 0;
                while let Some(d) = chars.get(i).and_then(|c| c.to_digit(10)) {
                    v = v
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(i64::from(d)))
                        .ok_or_else(|| ParseError::new(l, c, "integer literal overflows i64"))?;
                    advance(&mut i, &mut col);
                }
                toks.push(Tok {
                    kind: TokKind::Int(v),
                    line: l,
                    col: c,
                });
            }
            ch if ch.is_ascii_alphabetic() || ch == '_' => {
                let mut s = String::new();
                while let Some(&ch) = chars.get(i) {
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        s.push(ch);
                        advance(&mut i, &mut col);
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Ident(s),
                    line: l,
                    col: c,
                });
            }
            _ => {
                let kind = match ch {
                    '{' => TokKind::LBrace,
                    '}' => TokKind::RBrace,
                    '[' => TokKind::LBracket,
                    ']' => TokKind::RBracket,
                    '(' => TokKind::LParen,
                    ')' => TokKind::RParen,
                    '=' => TokKind::Eq,
                    ',' => TokKind::Comma,
                    '+' => TokKind::Plus,
                    '-' => TokKind::Minus,
                    '*' => TokKind::Star,
                    '.' => TokKind::Dot,
                    '#' => TokKind::Hash,
                    '$' => TokKind::Dollar,
                    other => {
                        return Err(ParseError::new(
                            l,
                            c,
                            format!("unexpected character `{other}`"),
                        ))
                    }
                };
                toks.push(Tok {
                    kind,
                    line: l,
                    col: c,
                });
                advance(&mut i, &mut col);
            }
        }
    }
    toks.push(Tok {
        kind: TokKind::Eof,
        line,
        col,
    });
    Ok(toks)
}

/// An `acc(..)`/`carry(..)` reference whose target index can only be
/// bounds-checked once the body graph is complete.
struct DeferredRef {
    index: usize,
    line: u32,
    col: u32,
    what: &'static str,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    arrays: Vec<(String, usize)>,
    params: Vec<(String, i32)>,
    deferred: Vec<DeferredRef>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, t: &Tok, msg: impl Into<String>) -> ParseError {
        ParseError::new(t.line, t.col, msg)
    }

    fn expect(&mut self, kind: &TokKind, what: &str) -> Result<Tok, ParseError> {
        let t = self.next();
        if &t.kind == kind {
            Ok(t)
        } else {
            Err(self.err(&t, format!("expected {what}, found {}", t.kind.describe())))
        }
    }

    /// A bare identifier or quoted string (array / param / kernel names).
    fn name(&mut self, what: &str) -> Result<(String, Tok), ParseError> {
        let t = self.next();
        match &t.kind {
            TokKind::Ident(s) => Ok((s.clone(), t.clone())),
            TokKind::Str(s) => Ok((s.clone(), t.clone())),
            other => Err(self.err(&t, format!("expected {what}, found {}", other.describe()))),
        }
    }

    /// A possibly negated integer literal.
    fn int(&mut self, what: &str) -> Result<i64, ParseError> {
        let t = self.next();
        match t.kind {
            TokKind::Int(v) => Ok(v),
            TokKind::Minus => match self.next() {
                Tok {
                    kind: TokKind::Int(v),
                    ..
                } => Ok(-v),
                t => Err(self.err(&t, format!("expected {what}, found {}", t.kind.describe()))),
            },
            ref other => Err(self.err(&t, format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn int_in(&mut self, what: &str, lo: i64, hi: i64) -> Result<i64, ParseError> {
        let t = self.peek().clone();
        let v = self.int(what)?;
        if v < lo || v > hi {
            return Err(self.err(&t, format!("{what} {v} out of range ({lo}..={hi})")));
        }
        Ok(v)
    }

    /// `nK` node reference; `limit` is the exclusive upper bound enforced
    /// immediately (`None` defers the bounds check).
    fn node_ref(&mut self, limit: Option<usize>) -> Result<(NodeId, Tok), ParseError> {
        let t = self.next();
        let TokKind::Ident(s) = &t.kind else {
            return Err(self.err(
                &t,
                format!("expected node reference `nK`, found {}", t.kind.describe()),
            ));
        };
        let idx = s
            .strip_prefix('n')
            .and_then(|d| {
                if d.is_empty() {
                    None
                } else {
                    d.parse::<u32>().ok()
                }
            })
            .ok_or_else(|| self.err(&t, format!("expected node reference `nK`, found `{s}`")))?;
        if let Some(limit) = limit {
            if idx as usize >= limit {
                return Err(self.err(
                    &t,
                    format!("node n{idx} is not defined yet (operands may only reference earlier nodes)"),
                ));
            }
        }
        Ok((NodeId(idx), t.clone()))
    }

    fn array_id(&mut self) -> Result<ArrayId, ParseError> {
        let (name, t) = self.name("array name")?;
        let idx = self
            .arrays
            .iter()
            .position(|(n, _)| *n == name)
            .ok_or_else(|| {
                self.err(
                    &t,
                    format!("unknown array `{name}` (arrays must be declared before use)"),
                )
            })?;
        Ok(ArrayId(idx as u32))
    }

    /// `Array[base + cd*i + cm*j + cs*s]` — terms in any order, each a
    /// plain integer, `coef*var`, or a bare variable (`i`, `j`, `s`).
    fn addr(&mut self) -> Result<AddrExpr, ParseError> {
        let array = self.array_id()?;
        self.expect(&TokKind::LBracket, "`[`")?;
        let (mut base, mut cd, mut cm, mut cs) = (0i64, 0i64, 0i64, 0i64);
        loop {
            let mut sign = 1i64;
            if self.peek().kind == TokKind::Minus {
                self.next();
                sign = -1;
            }
            let t = self.next();
            match t.kind {
                TokKind::Int(v) => {
                    if self.peek().kind == TokKind::Star {
                        self.next();
                        let (vt, var) = {
                            let t = self.next();
                            match &t.kind {
                                TokKind::Ident(s) => (t.clone(), s.clone()),
                                other => {
                                    return Err(self.err(
                                        &t,
                                        format!(
                                            "expected `i`, `j`, or `s`, found {}",
                                            other.describe()
                                        ),
                                    ))
                                }
                            }
                        };
                        match var.as_str() {
                            "i" => cd += sign * v,
                            "j" => cm += sign * v,
                            "s" => cs += sign * v,
                            other => {
                                return Err(self.err(
                                    &vt,
                                    format!(
                                        "unknown address variable `{other}` (use `i`, `j`, or `s`)"
                                    ),
                                ))
                            }
                        }
                    } else {
                        base += sign * v;
                    }
                }
                TokKind::Ident(ref s) => match s.as_str() {
                    "i" => cd += sign,
                    "j" => cm += sign,
                    "s" => cs += sign,
                    other => {
                        return Err(self.err(
                            &t,
                            format!("unknown address variable `{other}` (use `i`, `j`, or `s`)"),
                        ))
                    }
                },
                ref other => {
                    return Err(self.err(
                        &t,
                        format!("expected address term, found {}", other.describe()),
                    ))
                }
            }
            match self.peek().kind {
                TokKind::Plus => {
                    self.next();
                }
                TokKind::Minus => {} // consumed as the next term's sign
                _ => break,
            }
        }
        self.expect(&TokKind::RBracket, "`]`")?;
        Ok(AddrExpr::affine(array, base, cd, cm, cs))
    }

    fn operand(&mut self, defined: usize, in_tail: bool) -> Result<Operand, ParseError> {
        let t = self.peek().clone();
        match &t.kind {
            TokKind::Hash => {
                self.next();
                let v = self.int_in("constant", i64::from(i32::MIN), i64::from(i32::MAX))?;
                Ok(Operand::Const(v as i32))
            }
            TokKind::Dollar => {
                self.next();
                let (name, nt) = self.name("parameter name")?;
                let idx = self
                    .params
                    .iter()
                    .position(|(n, _)| *n == name)
                    .ok_or_else(|| {
                        self.err(&nt, format!("unknown parameter `{name}` (parameters must be declared before use)"))
                    })?;
                Ok(Operand::Param(ParamId(idx as u32)))
            }
            TokKind::Ident(s) if s == "acc" => {
                if in_tail {
                    return Err(self.err(
                        &t,
                        "acc(..) is only valid in the body (use carry(..) in the tail)",
                    ));
                }
                self.next();
                self.expect(&TokKind::LParen, "`(`")?;
                let (node, nt) = self.node_ref(None)?;
                self.deferred.push(DeferredRef {
                    index: node.index(),
                    line: nt.line,
                    col: nt.col,
                    what: "acc",
                });
                self.expect(&TokKind::Comma, "`,`")?;
                let init = self.int_in(
                    "accumulator initial value",
                    i64::from(i32::MIN),
                    i64::from(i32::MAX),
                )?;
                self.expect(&TokKind::RParen, "`)`")?;
                Ok(Operand::Accum {
                    node,
                    init: init as i32,
                })
            }
            TokKind::Ident(s) if s == "carry" => {
                if !in_tail {
                    return Err(self.err(&t, "carry(..) is only valid in the tail"));
                }
                self.next();
                self.expect(&TokKind::LParen, "`(`")?;
                let (node, nt) = self.node_ref(None)?;
                self.deferred.push(DeferredRef {
                    index: node.index(),
                    line: nt.line,
                    col: nt.col,
                    what: "carry",
                });
                self.expect(&TokKind::RParen, "`)`")?;
                Ok(Operand::Carry(node))
            }
            TokKind::Ident(_) => {
                let (node, _) = self.node_ref(Some(defined))?;
                if self.peek().kind == TokKind::Dot {
                    self.next();
                    let (field, ft) = self.name("`hi`")?;
                    if field != "hi" {
                        return Err(
                            self.err(&ft, format!("unknown node field `.{field}` (only `.hi`)"))
                        );
                    }
                    Ok(Operand::Pair(node))
                } else {
                    Ok(Operand::Node(node))
                }
            }
            other => Err(self.err(&t, format!("expected operand, found {}", other.describe()))),
        }
    }

    /// One `nK = op ...` statement appended to `builder`.
    fn node_stmt(
        &mut self,
        builder: &mut DfgBuilder,
        count: usize,
        in_tail: bool,
    ) -> Result<(), ParseError> {
        let (label, lt) = self.node_ref(None)?;
        if label.index() != count {
            return Err(self.err(
                &lt,
                format!("node label n{} out of order (expected n{count})", label.0),
            ));
        }
        self.expect(&TokKind::Eq, "`=`")?;
        let (op_name, ot) = self.name("operation keyword")?;
        let op = OpKind::ALL
            .into_iter()
            .find(|&op| op_keyword(op) == op_name)
            .ok_or_else(|| self.err(&ot, format!("unknown operation `{op_name}`")))?;
        match op {
            OpKind::Load => {
                let a = self.addr()?;
                if self.peek().kind == TokKind::Comma {
                    self.next();
                    let a2 = self.addr()?;
                    builder.load_pair(a, a2);
                } else {
                    builder.load(a);
                }
            }
            OpKind::Store => {
                let a = self.addr()?;
                self.expect(&TokKind::Comma, "`,`")?;
                let value = self.operand(count, in_tail)?;
                builder.store(a, value);
            }
            op => {
                let mut operands = Vec::new();
                if op.arity() > 0 {
                    operands.push(self.operand(count, in_tail)?);
                    while self.peek().kind == TokKind::Comma {
                        self.next();
                        operands.push(self.operand(count, in_tail)?);
                    }
                }
                if operands.len() != op.arity() {
                    return Err(self.err(
                        &ot,
                        format!(
                            "`{op_name}` takes {} operand(s), found {}",
                            op.arity(),
                            operands.len()
                        ),
                    ));
                }
                builder.op(op, operands);
            }
        }
        Ok(())
    }

    fn dfg(&mut self, in_tail: bool) -> Result<Dfg, ParseError> {
        self.expect(&TokKind::LBrace, "`{`")?;
        let mut builder = DfgBuilder::new();
        let mut count = 0usize;
        while self.peek().kind != TokKind::RBrace {
            if self.peek().kind == TokKind::Eof {
                let t = self.peek().clone();
                return Err(self.err(&t, "unexpected end of input inside graph (missing `}`?)"));
            }
            self.node_stmt(&mut builder, count, in_tail)?;
            count += 1;
        }
        self.next(); // `}`
        Ok(builder.finish())
    }
}

/// Parses one kernel in the textual DFG format.
///
/// # Errors
///
/// A [`ParseError`] with the 1-based line/column of the first offending
/// token — lexical errors, structural errors (unknown arrays/operations,
/// out-of-order node labels, arity mismatches, references to undefined
/// nodes), and kernel-level validation failures (out-of-bounds
/// addresses, dataflow-shape violations) are all reported this way.
///
/// # Examples
///
/// ```
/// let text = r#"
/// kernel "saxpy" {
///   elements 8
///   array x[8]
///   array y[8]
///   array out[8]
///   param a = 3
///   body {
///     n0 = load x[i], y[i]
///     n1 = mult n0, $a
///     n2 = add n1, n0.hi
///     n3 = store out[i], n2
///   }
/// }
/// "#;
/// let k = rsp_workload::parse_kernel(text).unwrap();
/// assert_eq!(k.name(), "saxpy");
/// assert_eq!(k.total_ops(), 32);
/// ```
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        arrays: Vec::new(),
        params: Vec::new(),
        deferred: Vec::new(),
    };

    let kw = p.peek().clone();
    let (kw_name, _) = p.name("`kernel`")?;
    if kw_name != "kernel" {
        return Err(p.err(&kw, format!("expected `kernel`, found `{kw_name}`")));
    }
    let (name, _) = p.name("kernel name")?;
    p.expect(&TokKind::LBrace, "`{`")?;

    let mut description: Option<String> = None;
    let mut elements: Option<usize> = None;
    let mut steps: Option<usize> = None;
    let mut divisor: Option<usize> = None;
    let mut style: Option<MappingStyle> = None;
    let mut body: Option<Dfg> = None;
    let mut tail: Option<Dfg> = None;

    loop {
        let t = p.peek().clone();
        match &t.kind {
            TokKind::RBrace => {
                p.next();
                break;
            }
            TokKind::Ident(section) => {
                let section = section.clone();
                p.next();
                match section.as_str() {
                    "description" => {
                        if description.is_some() {
                            return Err(p.err(&t, "duplicate `description`"));
                        }
                        let (text, _) = p.name("description string")?;
                        description = Some(text);
                    }
                    "elements" => {
                        if elements.is_some() {
                            return Err(p.err(&t, "duplicate `elements`"));
                        }
                        elements = Some(p.int_in("element count", 1, 1 << 24)? as usize);
                    }
                    "steps" => {
                        if steps.is_some() {
                            return Err(p.err(&t, "duplicate `steps`"));
                        }
                        steps = Some(p.int_in("step count", 1, 1 << 24)? as usize);
                    }
                    "divisor" => {
                        if divisor.is_some() {
                            return Err(p.err(&t, "duplicate `divisor`"));
                        }
                        divisor = Some(p.int_in("element divisor", 1, 1 << 24)? as usize);
                    }
                    "style" => {
                        if style.is_some() {
                            return Err(p.err(&t, "duplicate `style`"));
                        }
                        let (s, st) = p.name("`lockstep` or `dataflow`")?;
                        style = Some(match s.as_str() {
                            "lockstep" => MappingStyle::Lockstep,
                            "dataflow" => MappingStyle::Dataflow,
                            other => {
                                return Err(p.err(
                                    &st,
                                    format!(
                                        "unknown style `{other}` (use `lockstep` or `dataflow`)"
                                    ),
                                ))
                            }
                        });
                    }
                    "array" => {
                        let (aname, at) = p.name("array name")?;
                        if p.arrays.iter().any(|(n, _)| *n == aname) {
                            return Err(p.err(&at, format!("duplicate array `{aname}`")));
                        }
                        p.expect(&TokKind::LBracket, "`[`")?;
                        let len = p.int_in("array length", 1, 1 << 24)? as usize;
                        p.expect(&TokKind::RBracket, "`]`")?;
                        p.arrays.push((aname, len));
                    }
                    "param" => {
                        let (pname, pt) = p.name("parameter name")?;
                        if p.params.iter().any(|(n, _)| *n == pname) {
                            return Err(p.err(&pt, format!("duplicate parameter `{pname}`")));
                        }
                        p.expect(&TokKind::Eq, "`=`")?;
                        let v = p.int_in(
                            "parameter default",
                            i64::from(i32::MIN),
                            i64::from(i32::MAX),
                        )?;
                        p.params.push((pname, v as i32));
                    }
                    "body" => {
                        if body.is_some() {
                            return Err(p.err(&t, "duplicate `body`"));
                        }
                        body = Some(p.dfg(false)?);
                        // `acc(nK, ..)` may reference any body node
                        // (including later ones); check now that the
                        // graph is complete.
                        let len = body.as_ref().map(Dfg::len).unwrap_or(0);
                        for d in p.deferred.drain(..) {
                            if d.index >= len {
                                return Err(ParseError::new(
                                    d.line,
                                    d.col,
                                    format!("{}(n{}) references a node outside the body (body has {len} nodes)", d.what, d.index),
                                ));
                            }
                        }
                    }
                    "tail" => {
                        if tail.is_some() {
                            return Err(p.err(&t, "duplicate `tail`"));
                        }
                        if body.is_none() {
                            return Err(p.err(
                                &t,
                                "`tail` must come after `body` (carry(..) references body nodes)",
                            ));
                        }
                        tail = Some(p.dfg(true)?);
                        let len = body.as_ref().map(Dfg::len).unwrap_or(0);
                        for d in p.deferred.drain(..) {
                            if d.index >= len {
                                return Err(ParseError::new(
                                    d.line,
                                    d.col,
                                    format!("{}(n{}) references a node outside the body (body has {len} nodes)", d.what, d.index),
                                ));
                            }
                        }
                    }
                    other => {
                        return Err(p.err(
                            &t,
                            format!(
                                "unknown section `{other}` (expected description, elements, steps, \
                                 divisor, style, array, param, body, or tail)"
                            ),
                        ))
                    }
                }
            }
            other => {
                return Err(p.err(
                    &t,
                    format!(
                        "expected a section keyword or `}}`, found {}",
                        other.describe()
                    ),
                ))
            }
        }
    }
    let t = p.peek().clone();
    if t.kind != TokKind::Eof {
        return Err(p.err(
            &t,
            format!(
                "expected end of input after `}}`, found {}",
                t.kind.describe()
            ),
        ));
    }

    let Some(elements) = elements else {
        return Err(p.err(&kw, "missing `elements` section"));
    };
    let Some(body) = body else {
        return Err(p.err(&kw, "missing `body` section"));
    };
    let steps = steps.unwrap_or(1);
    let divisor = divisor.unwrap_or(1);
    let style = style.unwrap_or(MappingStyle::Lockstep);
    // Kernel validation sweeps the whole `elements × steps` space per
    // address expression; bound the product so a typo'd (or hostile)
    // file cannot wedge the parser for hours.
    if (elements as u64) * (steps as u64) > 1 << 24 {
        return Err(p.err(
            &kw,
            format!(
                "iteration space elements × steps = {elements} × {steps} exceeds the \
                 supported maximum (2^24 body iterations)"
            ),
        ));
    }

    let mut kb = KernelBuilder::new(name, elements);
    for (aname, len) in &p.arrays {
        kb.array(aname.clone(), *len);
    }
    for (pname, v) in &p.params {
        kb.param(pname.clone(), *v);
    }
    let mut kb = kb
        .steps(steps)
        .elem_divisor(divisor)
        .style(style)
        .description(description.unwrap_or_default())
        .body(body);
    if let Some(tail) = tail {
        kb = kb.tail(tail);
    }
    kb.build()
        .map_err(|e| ParseError::new(kw.line, kw.col, format!("invalid kernel: {e}")))
}
