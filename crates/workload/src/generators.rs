//! Parametric kernel-family generators.
//!
//! Each generator scales a classic loop shape well past the paper's fixed
//! nine-kernel suite (and past a 4×4 array's 16 PEs): matrix
//! multiplication of any order, FIR filters of any tap count, 2-D
//! convolutions, unrolled FFT butterfly loops, and fan-in reduction
//! trees. All outputs are validated [`Kernel`]s; the fixed parameter
//! choices committed under `workloads/` live in [`crate::registry`].
//!
//! Capacity notes (default 256-deep configuration cache): [`matmul`] with
//! `n ≥ 11` no longer fits a 4×4 array and `n ≥ 16` also exceeds a 6×6;
//! [`reduction`]`(8192, 8, 8)` exceeds both while staying
//! multiplication-free, so its *rearranged* schedules keep fitting the
//! cache on every sharing variant — the kernel families that finally
//! force multi-geometry flows off the 4×4 early exit (see
//! `BENCH_workload.json`).

use rsp_kernel::{AddrExpr, DfgBuilder, Kernel, KernelBuilder, MappingStyle, NodeId, Operand};

use Operand::{Node as N, Pair as P, Param as Pa};

/// Matrix multiplication of order `n`:
/// `Z(i,j) = C * sum_k X(i,k) * Y(k,j)` — the schedule shape of the
/// paper's Fig. 2, at arbitrary order.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let k = rsp_workload::generators::matmul(16);
/// assert_eq!(k.name(), "matmul16");
/// assert_eq!(k.elements(), 256);
/// assert_eq!(k.steps(), 16);
/// ```
pub fn matmul(n: usize) -> Kernel {
    assert!(n > 0, "matrix order must be non-zero");
    let mut kb = KernelBuilder::new(format!("matmul{n}"), n * n);
    let x = kb.array("X", n * n);
    let y = kb.array("Y", n * n);
    let z = kb.array("Z", n * n);
    let c = kb.param("C", 3);
    let ni = n as i64;

    let mut b = DfgBuilder::new();
    let l = b.load_pair(
        AddrExpr::affine(x, 0, ni, 0, 1), // X[i, k], i = e / n, k = step
        AddrExpr::affine(y, 0, 0, 1, ni), // Y[k, j], j = e % n
    );
    let m = b.mult(N(l), P(l));
    let acc = b.accum_add(N(m), 0);

    let mut t = DfgBuilder::new();
    let scaled = t.mult(Operand::Carry(acc), Pa(c));
    t.store(AddrExpr::affine(z, 0, ni, 1, 0), N(scaled));

    kb.steps(n)
        .elem_divisor(n)
        .description(format!("Z(i,j) = C * sum_k X(i,k)*Y(k,j), order {n}"))
        .style(MappingStyle::Lockstep)
        .body(b.finish())
        .tail(t.finish())
        .build()
        .expect("matmul kernel is valid")
}

/// FIR filter with `taps` coefficients over `n` outputs:
/// `y[e] = sum_t c[t] * x[e + t]` (one tap per step, PE-local
/// accumulation, tail store).
///
/// # Panics
///
/// Panics if `n == 0` or `taps == 0`.
///
/// # Examples
///
/// ```
/// let k = rsp_workload::generators::fir(128, 8);
/// assert_eq!(k.name(), "fir128x8");
/// assert_eq!(k.iterations(), 1024);
/// ```
pub fn fir(n: usize, taps: usize) -> Kernel {
    assert!(n > 0 && taps > 0, "fir needs outputs and taps");
    let mut kb = KernelBuilder::new(format!("fir{n}x{taps}"), n);
    let x = kb.array("x", n + taps - 1);
    let c = kb.array("c", taps);
    let y = kb.array("y", n);

    let mut b = DfgBuilder::new();
    // One dual load fetches the sample and its coefficient together.
    let l = b.load_pair(
        AddrExpr::affine(x, 0, 1, 0, 1), // x[e + t], t = step
        AddrExpr::affine(c, 0, 0, 0, 1), // c[t]
    );
    let m = b.mult(N(l), P(l));
    let acc = b.accum_add(N(m), 0);

    let mut t = DfgBuilder::new();
    t.store(AddrExpr::flat(y, 0, 1), Operand::Carry(acc));

    kb.steps(taps)
        .description(format!(
            "y[e] = sum_t c[t]*x[e+t], {taps}-tap FIR over {n} outputs"
        ))
        .style(MappingStyle::Lockstep)
        .body(b.finish())
        .tail(t.finish())
        .build()
        .expect("fir kernel is valid")
}

/// Valid-region 2-D convolution of a `k`×`k` stencil over a
/// `width`×`height` image, fully unrolled into one dataflow body
/// (the stencil coefficients are loop-invariant parameters).
///
/// # Panics
///
/// Panics if `k == 0` or the stencil does not fit the image.
///
/// # Examples
///
/// ```
/// let k = rsp_workload::generators::conv2d(12, 12, 3);
/// assert_eq!(k.name(), "conv2d_12x12_3x3");
/// assert_eq!(k.elements(), 100); // (12-3+1)^2 outputs
/// ```
pub fn conv2d(width: usize, height: usize, k: usize) -> Kernel {
    assert!(
        k > 0 && k <= width && k <= height,
        "stencil must fit the image"
    );
    let ow = width - k + 1;
    let oh = height - k + 1;
    let mut kb = KernelBuilder::new(format!("conv2d_{width}x{height}_{k}x{k}"), ow * oh);
    let input = kb.array("in", width * height);
    let out = kb.array("out", ow * oh);
    // Small signed stencil defaults, deterministic in (r, c).
    let coef: Vec<_> = (0..k * k)
        .map(|t| kb.param(format!("c{}_{}", t / k, t % k), (t as i32 % 7) - 3))
        .collect();

    // Tap (r, c) reads in[(i + r) * width + (j + c)] with i = e / ow,
    // j = e % ow.
    let tap_addr = |t: usize| {
        let (r, c) = (t / k, t % k);
        AddrExpr::affine(input, (r * width + c) as i64, width as i64, 1, 0)
    };

    let mut b = DfgBuilder::new();
    // Dual loads fetch taps two at a time over the row read buses.
    let mut tap_val: Vec<Operand> = Vec::with_capacity(k * k);
    let mut t = 0;
    while t + 1 < k * k {
        let l = b.load_pair(tap_addr(t), tap_addr(t + 1));
        tap_val.push(N(l));
        tap_val.push(P(l));
        t += 2;
    }
    if t < k * k {
        let l = b.load(tap_addr(t));
        tap_val.push(N(l));
    }
    // One product per tap, then a balanced reduction tree.
    let mut terms: Vec<NodeId> = tap_val
        .iter()
        .zip(&coef)
        .map(|(v, c)| b.mult(*v, Pa(*c)))
        .collect();
    while terms.len() > 1 {
        terms = terms
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    b.add(N(pair[0]), N(pair[1]))
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    b.store(AddrExpr::affine(out, 0, ow as i64, 1, 0), N(terms[0]));

    kb.elem_divisor(ow)
        .description(format!(
            "out[i,j] = sum_rc c[r,c]*in[i+r,j+c], {k}x{k} stencil over {width}x{height} (valid region)"
        ))
        .style(MappingStyle::Dataflow)
        .body(b.finish())
        .build()
        .expect("conv2d kernel is valid")
}

/// Unrolled radix-2 FFT butterfly multiplication loop over `n`
/// butterflies: `t = w*b; (out, out2) = (a + t, a - t)` on complex
/// values, one butterfly per element.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let k = rsp_workload::generators::fft(64);
/// assert_eq!(k.name(), "fft64");
/// assert_eq!(k.body_mults(), 4);
/// ```
pub fn fft(n: usize) -> Kernel {
    assert!(n > 0, "butterfly count must be non-zero");
    let mut kb = KernelBuilder::new(format!("fft{n}"), n);
    let wr = kb.array("wr", n);
    let wi = kb.array("wi", n);
    let br = kb.array("br", n);
    let bi = kb.array("bi", n);
    let ar = kb.array("ar", n);
    let ai = kb.array("ai", n);
    let our = kb.array("out_r", n);
    let oui = kb.array("out_i", n);
    let opr = kb.array("out2_r", n);
    let opi = kb.array("out2_i", n);

    let mut b = DfgBuilder::new();
    let lw = b.load_pair(AddrExpr::flat(wr, 0, 1), AddrExpr::flat(wi, 0, 1));
    let lb = b.load_pair(AddrExpr::flat(br, 0, 1), AddrExpr::flat(bi, 0, 1));
    let la = b.load_pair(AddrExpr::flat(ar, 0, 1), AddrExpr::flat(ai, 0, 1));

    let m0 = b.mult(N(lw), N(lb)); // wr*br
    let m1 = b.mult(P(lw), P(lb)); // wi*bi
    let m2 = b.mult(N(lw), P(lb)); // wr*bi
    let m3 = b.mult(P(lw), N(lb)); // wi*br
    let tr = b.sub(N(m0), N(m1));
    let ti = b.add(N(m2), N(m3));

    let sum_r = b.add(N(la), N(tr));
    b.store(AddrExpr::flat(our, 0, 1), N(sum_r));
    let sum_i = b.add(P(la), N(ti));
    b.store(AddrExpr::flat(oui, 0, 1), N(sum_i));
    let dif_r = b.sub(N(la), N(tr));
    b.store(AddrExpr::flat(opr, 0, 1), N(dif_r));
    let dif_i = b.sub(P(la), N(ti));
    b.store(AddrExpr::flat(opi, 0, 1), N(dif_i));

    kb.description(format!(
        "radix-2 FFT butterfly loop over {n} butterflies: t = w*b; out = a+t; out2 = a-t"
    ))
    .style(MappingStyle::Dataflow)
    .body(b.finish())
    .build()
    .expect("fft kernel is valid")
}

/// Fan-in reduction tree: `n` inputs reduced `fan_in` at a time by a
/// balanced addition tree, `steps` trees accumulated per element
/// (`n / (fan_in·steps)` partial sums, host reduction outside the
/// kernel as in the paper's inner product).
///
/// With `steps == 1` the kernel is a pure dataflow tree (one element per
/// row); with `steps > 1` each element chains `steps` trees through a
/// PE-local accumulator and a tail stores the total (lockstep style).
/// The kernel is multiplication-free, so — like the paper's SAD — it
/// never contends for shared resources: even the largest instances
/// rearrange onto any RS/RSP variant without a single stall, which is
/// what lets a cache-fillingly large reduction force multi-geometry
/// flows onto the 8×8 array without overflowing the configuration cache
/// in the RSP-mapping stage.
///
/// # Panics
///
/// Panics if `fan_in < 2`, `steps == 0`, or `n` is not a positive
/// multiple of `fan_in * steps`.
///
/// # Examples
///
/// ```
/// let k = rsp_workload::generators::reduction(256, 8, 1);
/// assert_eq!(k.name(), "reduce256x8");
/// assert_eq!(k.elements(), 32);
///
/// let big = rsp_workload::generators::reduction(8192, 8, 8);
/// assert_eq!(big.name(), "reduce8192x8x8");
/// assert_eq!(big.elements(), 128);
/// assert_eq!(big.total_mults(), 0);
/// ```
pub fn reduction(n: usize, fan_in: usize, steps: usize) -> Kernel {
    assert!(fan_in >= 2, "fan-in must be at least 2");
    assert!(steps > 0, "steps must be non-zero");
    assert!(
        n > 0 && n.is_multiple_of(fan_in * steps),
        "n must be a positive multiple of fan_in * steps"
    );
    let elements = n / (fan_in * steps);
    let name = if steps == 1 {
        format!("reduce{n}x{fan_in}")
    } else {
        format!("reduce{n}x{fan_in}x{steps}")
    };
    let mut kb = KernelBuilder::new(name, elements);
    let input = kb.array("in", n);
    let partial = kb.array("partial", elements);

    // Element e, step s reads in[e * fan_in * steps + s * fan_in + t].
    let slot =
        |t: usize| AddrExpr::affine(input, t as i64, (fan_in * steps) as i64, 0, fan_in as i64);

    let mut b = DfgBuilder::new();
    let mut leaves: Vec<Operand> = Vec::with_capacity(fan_in);
    let mut t = 0;
    while t + 1 < fan_in {
        let l = b.load_pair(slot(t), slot(t + 1));
        leaves.push(N(l));
        leaves.push(P(l));
        t += 2;
    }
    if t < fan_in {
        leaves.push(N(b.load(slot(t))));
    }
    let mut level: Vec<NodeId> = leaves
        .chunks(2)
        .map(|pair| {
            if pair.len() == 2 {
                b.add(pair[0], pair[1])
            } else {
                b.add(pair[0], Operand::Const(0))
            }
        })
        .collect();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    b.add(N(pair[0]), N(pair[1]))
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    if steps == 1 {
        b.store(AddrExpr::flat(partial, 0, 1), N(level[0]));
        kb.description(format!(
            "partial[e] = sum of in[{fan_in}e..{fan_in}(e+1)), balanced {fan_in}-ary reduction tree"
        ))
        .style(MappingStyle::Dataflow)
        .body(b.finish())
        .build()
        .expect("reduction kernel is valid")
    } else {
        let acc = b.accum_add(N(level[0]), 0);
        let mut t = DfgBuilder::new();
        t.store(AddrExpr::flat(partial, 0, 1), Operand::Carry(acc));
        kb.steps(steps)
            .description(format!(
                "partial[e] = sum over {steps} steps of {fan_in}-ary reduction trees \
                 (multiplication-free, stall-free on every RS/RSP variant)"
            ))
            .style(MappingStyle::Lockstep)
            .body(b.finish())
            .tail(t.finish())
            .build()
            .expect("reduction kernel is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_kernel::{evaluate, Bindings, MemoryImage};

    #[test]
    fn matmul_matches_reference_arithmetic() {
        let n = 6;
        let k = matmul(n);
        let img = MemoryImage::random(&k, 11);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        for i in 0..n {
            for j in 0..n {
                let dot: i32 = (0..n)
                    .map(|t| img.read(0, i * n + t) * img.read(1, t * n + j))
                    .sum();
                assert_eq!(out.read(2, i * n + j), 3 * dot, "Z[{i},{j}]");
            }
        }
    }

    #[test]
    fn fir_matches_direct_convolution() {
        let (n, taps) = (16, 4);
        let k = fir(n, taps);
        let img = MemoryImage::random(&k, 3);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        for e in 0..n {
            let expect: i32 = (0..taps).map(|t| img.read(1, t) * img.read(0, e + t)).sum();
            assert_eq!(out.read(2, e), expect, "y[{e}]");
        }
    }

    #[test]
    fn conv2d_matches_direct_stencil() {
        let (w, h, kk) = (8, 6, 3);
        let k = conv2d(w, h, kk);
        let img = MemoryImage::random(&k, 7);
        let params = Bindings::defaults(&k);
        let out = evaluate(&k, &img, &params).unwrap();
        let ow = w - kk + 1;
        for i in 0..(h - kk + 1) {
            for j in 0..ow {
                let expect: i32 = (0..kk * kk)
                    .map(|t| {
                        let (r, c) = (t / kk, t % kk);
                        params.get(t) * img.read(0, (i + r) * w + (j + c))
                    })
                    .sum();
                assert_eq!(out.read(1, i * ow + j), expect, "out[{i},{j}]");
            }
        }
    }

    #[test]
    fn fft_matches_complex_butterfly() {
        let k = fft(16);
        let img = MemoryImage::random(&k, 5);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        for e in 0..16 {
            let (wr, wi) = (img.read(0, e), img.read(1, e));
            let (br, bi) = (img.read(2, e), img.read(3, e));
            let (ar, ai) = (img.read(4, e), img.read(5, e));
            let tr = wr * br - wi * bi;
            let ti = wr * bi + wi * br;
            assert_eq!(out.read(6, e), ar + tr);
            assert_eq!(out.read(7, e), ai + ti);
            assert_eq!(out.read(8, e), ar - tr);
            assert_eq!(out.read(9, e), ai - ti);
        }
    }

    #[test]
    fn reduction_partials_sum_inputs() {
        for (fan_in, steps) in [(2, 1), (3, 1), (8, 1), (2, 3), (8, 4)] {
            let n = 8 * fan_in * steps;
            let k = reduction(n, fan_in, steps);
            let img = MemoryImage::random(&k, 9);
            let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
            let span = fan_in * steps;
            for e in 0..n / span {
                let expect: i32 = (0..span).map(|t| img.read(0, e * span + t)).sum();
                assert_eq!(
                    out.read(1, e),
                    expect,
                    "partial[{e}] (fan-in {fan_in}, steps {steps})"
                );
            }
        }
    }

    #[test]
    fn stepped_reduction_is_multiplication_free_lockstep() {
        let k = reduction(8192, 8, 8);
        assert_eq!(k.style(), MappingStyle::Lockstep);
        assert_eq!(k.total_mults(), 0);
        assert_eq!(k.elements(), 128);
        assert_eq!(k.steps(), 8);
    }

    #[test]
    fn dataflow_families_are_dataflow_shaped() {
        for k in [conv2d(8, 8, 3), fft(32), reduction(64, 4, 1)] {
            assert_eq!(k.style(), MappingStyle::Dataflow, "{}", k.name());
            assert_eq!(k.steps(), 1, "{}", k.name());
            assert!(k.tail().is_none(), "{}", k.name());
        }
    }
}
