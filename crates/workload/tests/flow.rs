//! End-to-end flow integration: registry workloads drive
//! `rsp_core::run_flow`, and the generated kernel families finally give
//! multi-geometry base-architecture exploration a reason to leave the
//! 4×4 array (the standing ROADMAP note this subsystem closes).

use rsp_core::{run_flow, AppProfile, FlowConfig};
use rsp_workload::{generators, registry};

fn workload_apps() -> Vec<AppProfile> {
    vec![AppProfile::new(
        "generated-suite",
        registry().into_iter().map(|k| (k, 1)).collect(),
    )]
}

fn multi_geometry(parallelism: Option<usize>) -> FlowConfig {
    FlowConfig {
        coverage: 1.0,
        geometries: vec![(4, 4), (6, 6), (8, 8)],
        parallelism,
        ..FlowConfig::default()
    }
}

#[test]
fn workload_suite_selects_the_8x8_geometry() {
    // reduce8192x8x8 exceeds both the 4×4 and the 6×6 configuration
    // cache, so a genuinely multi-geometry exploration must land on the
    // paper's 8×8 — not because it was pinned.
    let report = run_flow(&workload_apps(), &multi_geometry(None)).unwrap();
    assert_eq!(report.base.geometry().rows(), 8);
    assert_eq!(report.base.geometry().cols(), 8);
    assert_eq!(report.stats.geometries_considered, 3);
    assert_eq!(report.stats.geometries_explored, 3);
    // The flow still finds a sharing design smaller than the base.
    assert!(report.area_slices < report.base_area_slices);
}

#[test]
fn serial_oracle_no_longer_early_exits_at_4x4() {
    // The serial geometry oracle walks geometries smallest-first and
    // stops at the first feasible one; with reduce8192x8x8 in the
    // profile it must walk straight through 4×4 and 6×6.
    let report = run_flow(&workload_apps(), &multi_geometry(Some(1))).unwrap();
    assert_eq!(report.stats.geometries_explored, 3);
    assert_eq!(report.base.geometry().pe_count(), 64);
}

#[test]
fn generated_families_escalate_geometry_stepwise() {
    // The intermediate escalation step: matmul11 overflows a 4×4 but
    // fits a 6×6; the big mult-free reduction overflows both.
    let apps = |k| vec![AppProfile::new("m", vec![(k, 1)])];
    let cfg = multi_geometry(None);
    let r12 = run_flow(&apps(generators::matmul(11)), &cfg).unwrap();
    assert_eq!(r12.base.geometry().pe_count(), 36);
    let big = run_flow(&apps(generators::reduction(8192, 8, 8)), &cfg).unwrap();
    assert_eq!(big.base.geometry().pe_count(), 64);
}

#[test]
fn matmul16_mapping_exceeds_4x4_and_6x6_capacity() {
    // Pure mapping capacity (no flow): matmul16's base schedule
    // overflows the 4×4 and 6×6 configuration caches and lands on 8×8.
    use rsp_arch::{ArrayGeometry, BaseArchitecture, BusSpec, PeDesign};
    use rsp_mapper::{map, MapError, MapOptions};
    let k = generators::matmul(16);
    let base = |r, c| {
        BaseArchitecture::new(
            ArrayGeometry::new(r, c),
            PeDesign::full(),
            BusSpec::paper_default(),
            256,
        )
    };
    for (r, c) in [(4, 4), (6, 6)] {
        let err = map(&base(r, c), &k, &MapOptions::default()).unwrap_err();
        assert!(
            matches!(err, MapError::ConfigCacheExceeded { .. }),
            "{r}x{c}"
        );
    }
    assert!(map(&base(8, 8), &k, &MapOptions::default()).is_ok());
}
