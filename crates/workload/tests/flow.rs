//! End-to-end flow integration: registry workloads drive
//! `rsp_core::run_flow`, and the generated kernel families finally give
//! multi-geometry base-architecture exploration a reason to leave the
//! 4×4 array (the standing ROADMAP note this subsystem closes).

use rsp_core::{run_flow, AppProfile, Constraints, FlowConfig};
use rsp_workload::{generators, registry, SUITE_MAX_SLOWDOWN};

fn workload_apps() -> Vec<AppProfile> {
    vec![AppProfile::new(
        "generated-suite",
        registry().into_iter().map(|k| (k, 1)).collect(),
    )]
}

fn multi_geometry(parallelism: Option<usize>) -> FlowConfig {
    FlowConfig {
        coverage: 1.0,
        geometries: vec![(4, 4), (6, 6), (8, 8)],
        parallelism,
        // The paper's 1.5× cap (rationale on the constant): honest now
        // that the estimator is admissible.
        constraints: Constraints {
            enforce_cost_bound: true,
            max_slowdown: SUITE_MAX_SLOWDOWN,
        },
        ..FlowConfig::default()
    }
}

#[test]
fn workload_suite_selects_the_8x8_geometry() {
    // reduce8192x8x8 exceeds both the 4×4 and the 6×6 configuration
    // cache, so a genuinely multi-geometry exploration must land on the
    // paper's 8×8 — not because it was pinned.
    let report = run_flow(&workload_apps(), &multi_geometry(None)).unwrap();
    assert_eq!(report.base.geometry().rows(), 8);
    assert_eq!(report.base.geometry().cols(), 8);
    assert_eq!(report.stats.geometries_considered, 3);
    assert_eq!(report.stats.geometries_explored, 3);
    // The flow still finds a sharing design smaller than the base.
    assert!(report.area_slices < report.base_area_slices);
}

#[test]
fn serial_oracle_no_longer_early_exits_at_4x4() {
    // The serial geometry oracle walks geometries smallest-first and
    // stops at the first feasible one; with reduce8192x8x8 in the
    // profile it must walk straight through 4×4 and 6×6.
    let report = run_flow(&workload_apps(), &multi_geometry(Some(1))).unwrap();
    assert_eq!(report.stats.geometries_explored, 3);
    assert_eq!(report.base.geometry().pe_count(), 64);
}

#[test]
fn generated_families_escalate_geometry_stepwise() {
    // The intermediate escalation step: matmul11 overflows a 4×4 but
    // fits a 6×6; the big mult-free reduction overflows both.
    let apps = |k| vec![AppProfile::new("m", vec![(k, 1)])];
    let cfg = multi_geometry(None);
    let r12 = run_flow(&apps(generators::matmul(11)), &cfg).unwrap();
    assert_eq!(r12.base.geometry().pe_count(), 36);
    let big = run_flow(&apps(generators::reduction(8192, 8, 8)), &cfg).unwrap();
    assert_eq!(big.base.geometry().pe_count(), 64);
}

#[test]
fn workload_flow_charges_refill_instead_of_rejecting() {
    // With matmul16 in the suite, stall-heavy frontier candidates
    // rearrange schedules past the 256-deep cache. The flow must split
    // them (nonzero refill counters), fail only the honestly
    // unsplittable pipelined combinations, and still choose a design.
    let report = run_flow(&workload_apps(), &multi_geometry(None)).unwrap();
    assert!(
        report.stats.refill_segments > 0,
        "no exact rearrangement was split: {:?}",
        report.stats
    );
    assert!(report.stats.refill_stall_cycles > 0);
    // The chosen design's own contexts expose their plans.
    let split: Vec<_> = report
        .rsp_contexts
        .iter()
        .filter(|r| r.refill.is_split())
        .collect();
    for r in &split {
        assert_eq!(r.refill_stalls(), r.elapsed_cycles() - r.total_cycles);
    }
    // Perf rows carry the refill columns consistently.
    for (p, r) in report.perf.iter().zip(&report.rsp_contexts) {
        assert_eq!(p.refill_stalls, r.refill_stalls(), "{}", p.kernel);
        assert_eq!(p.refill_segments as usize, r.refill_count(), "{}", p.kernel);
        assert_eq!(p.cycles, r.elapsed_cycles(), "{}", p.kernel);
    }
}

#[test]
fn pruned_workload_flow_with_refill_is_bit_identical_to_unpruned() {
    // The satellite equivalence property on the refill-exercising
    // workload: Dominated pruning + the stage-floor clock cut + the
    // exact-stage objective-score cut must leave every flow output
    // bit-identical to the unpruned serial flow, refill penalties
    // included.
    use rsp_core::{BoundKind, ClockBound, PruneStrategy};
    let cfg = |prune, clock_bound, parallelism| FlowConfig {
        prune,
        clock_bound,
        parallelism,
        bound: BoundKind::PerRowResidual,
        ..multi_geometry(None)
    };
    let apps = workload_apps();
    let unpruned = run_flow(&apps, &cfg(PruneStrategy::None, ClockBound::Off, Some(1))).unwrap();
    let pruned = run_flow(
        &apps,
        &cfg(PruneStrategy::Dominated, ClockBound::StageFloor, None),
    )
    .unwrap();
    assert_eq!(unpruned.base.geometry(), pruned.base.geometry());
    assert_eq!(unpruned.contexts, pruned.contexts);
    assert_eq!(unpruned.chosen.name(), pruned.chosen.name());
    assert_eq!(unpruned.chosen.plan(), pruned.chosen.plan());
    assert_eq!(unpruned.rsp_contexts, pruned.rsp_contexts);
    for (a, b) in unpruned.perf.iter().zip(&pruned.perf) {
        assert_eq!(a.cycles, b.cycles, "{}", a.kernel);
        assert_eq!(a.et_ns.to_bits(), b.et_ns.to_bits(), "{}", a.kernel);
        assert_eq!(a.refill_stalls, b.refill_stalls, "{}", a.kernel);
        assert_eq!(a.refill_segments, b.refill_segments, "{}", a.kernel);
    }
    assert_eq!(unpruned.area_slices.to_bits(), pruned.area_slices.to_bits());
    // Both flows exercised the splitter (the unpruned one at least as
    // much — it rearranges every frontier candidate).
    assert!(pruned.stats.refill_segments > 0);
    assert!(unpruned.stats.refill_segments >= pruned.stats.refill_segments);
}

#[test]
fn matmul16_mapping_exceeds_4x4_and_6x6_capacity() {
    // Pure mapping capacity (no flow): matmul16's base schedule
    // overflows the 4×4 and 6×6 configuration caches and lands on 8×8.
    use rsp_arch::{ArrayGeometry, BaseArchitecture, BusSpec, PeDesign};
    use rsp_mapper::{map, MapError, MapOptions};
    let k = generators::matmul(16);
    let base = |r, c| {
        BaseArchitecture::new(
            ArrayGeometry::new(r, c),
            PeDesign::full(),
            BusSpec::paper_default(),
            256,
        )
    };
    for (r, c) in [(4, 4), (6, 6)] {
        let err = map(&base(r, c), &k, &MapOptions::default()).unwrap_err();
        assert!(
            matches!(err, MapError::ConfigCacheExceeded { .. }),
            "{r}x{c}"
        );
    }
    assert!(map(&base(8, 8), &k, &MapOptions::default()).is_ok());
}
