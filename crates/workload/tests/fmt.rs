//! The `workloadgen --fmt` (workloadfmt) canonicalizer: liberally
//! parsed hand-written workloads are rewritten in the canonical printer
//! form, idempotently, with parse diagnostics on bad input.

use std::process::Command;

/// Deliberately non-canonical: bare kernel/array names, a comment,
/// omitted default sections, an address with omitted + reordered terms,
/// and loose whitespace. Parses to the same kernel as its canonical
/// form.
const NON_CANONICAL: &str = "// a hand-written workload\n\
kernel scale {\n\
  elements 4\n\
  array x[ 8 ]\n\
  param gain=3\n\
  body {\n\
    n0 = load x[ i + 3 ]\n\
    n1 = mult n0, $gain\n\
    n2 = store x[3+1*i], n1\n\
  }\n\
}\n";

#[test]
fn canonicalize_normalizes_and_is_idempotent() {
    let canon = rsp_workload::canonicalize(NON_CANONICAL).unwrap();
    assert_ne!(canon, NON_CANONICAL);
    // Canonical surface: quoted name, explicit scalar sections, full
    // four-term addresses, comments dropped.
    assert!(canon.contains("kernel \"scale\""), "{canon}");
    assert!(canon.contains("steps 1"), "{canon}");
    assert!(canon.contains("style lockstep"), "{canon}");
    assert!(!canon.contains("//"), "{canon}");
    // Same kernel either way; canonical form is a fixed point.
    assert_eq!(
        rsp_workload::parse_kernel(NON_CANONICAL).unwrap(),
        rsp_workload::parse_kernel(&canon).unwrap()
    );
    assert_eq!(rsp_workload::canonicalize(&canon).unwrap(), canon);
}

#[test]
fn workloadfmt_binary_rewrites_in_place_and_checks() {
    let dir = std::env::temp_dir().join(format!("workloadfmt-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("scale.dfg");
    std::fs::write(&file, NON_CANONICAL).unwrap();
    let bin = env!("CARGO_BIN_EXE_workloadgen");

    // --fmt --check flags the non-canonical file without touching it.
    let out = Command::new(bin)
        .args(["--fmt", "--check", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("NONCANON"));
    assert_eq!(std::fs::read_to_string(&file).unwrap(), NON_CANONICAL);

    // --fmt rewrites it canonically; a second run is a no-op.
    let out = Command::new(bin)
        .args(["--fmt", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let rewritten = std::fs::read_to_string(&file).unwrap();
    assert_eq!(
        rewritten,
        rsp_workload::canonicalize(NON_CANONICAL).unwrap()
    );
    let out = Command::new(bin)
        .args(["--fmt", "--check", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok"));

    // A parse error surfaces the file plus the line/column diagnostic.
    std::fs::write(&file, "kernel \"broken\" {\n  elements 4\n  elements 5\n}").unwrap();
    let out = Command::new(bin)
        .args(["--fmt", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 3, column 3: duplicate `elements`"),
        "{stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
