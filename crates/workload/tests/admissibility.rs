//! The estimator's admissibility contract, exercised over the generated
//! workload suite: the slack-aware stall estimate never exceeds the
//! exact rearranged elapsed cycle count, on any committed or seeded
//! random workload, on every Table 4/5 architecture. This is the
//! property the exploration pruning cuts and the flow's exact-stage
//! objective-score cut rest on — an inadmissible estimate would let the
//! pruned flow discard the true optimum.

use proptest::prelude::*;
use rsp_arch::{presets, RspArchitecture};
use rsp_core::{estimate_stalls, rearrange, RearrangeOptions};
use rsp_kernel::Kernel;
use rsp_mapper::{map, MapOptions};
use rsp_workload::{random_kernel, registry, RandomKernelConfig, SUITE_MAX_SLOWDOWN};

/// Estimate vs. exact for one kernel on one architecture, or `None`
/// when the combination never reaches the comparison: the base schedule
/// does not fit the architecture's configuration cache, or the exact
/// rearrangement is honestly infeasible (e.g. a pipelined multiplication
/// in flight across every split boundary).
fn est_vs_exact(kernel: &Kernel, arch: &RspArchitecture) -> Option<(u32, u32)> {
    let ctx = map(arch.base(), kernel, &MapOptions::default()).ok()?;
    let est = estimate_stalls(&ctx, kernel, arch);
    let exact = rearrange(&ctx, arch, &RearrangeOptions::default()).ok()?;
    Some((est.total_cycles, exact.elapsed_cycles()))
}

/// Every committed workload (generated families and the two committed
/// random seeds alike), on every Table 4/5 architecture: the estimate
/// lower-bounds the exact elapsed cycles.
#[test]
fn estimates_are_admissible_across_suite_and_table_architectures() {
    let mut compared = 0usize;
    for kernel in registry() {
        for arch in presets::table_architectures() {
            let Some((est, exact)) = est_vs_exact(&kernel, &arch) else {
                continue;
            };
            assert!(
                est <= exact,
                "inadmissible estimate for {} on {}: est {est} > exact {exact}",
                kernel.name(),
                arch.name()
            );
            compared += 1;
        }
    }
    // The suite must actually exercise the property, not vacuously skip.
    assert!(
        compared > registry().len(),
        "only {compared} comparisons ran"
    );
}

/// Tightness regression on the suite's stall-heaviest committed
/// combination: matmul16 on RS#1 (one combinational multiplier per
/// row). The estimate must stay admissible *and* within the paper's
/// 1.5× slowdown cap of the exact time — the margin that lets the
/// suite run under [`SUITE_MAX_SLOWDOWN`] without the estimator
/// misclassifying the space's interesting candidates.
#[test]
fn matmul16_on_rs1_estimate_is_admissible_and_tight() {
    let kernel = rsp_workload::generators::matmul(16);
    let (est, exact) = est_vs_exact(&kernel, &presets::rs1()).expect("matmul16 fits RS#1");
    assert!(est <= exact, "est {est} > exact {exact}");
    assert!(
        exact as f64 <= SUITE_MAX_SLOWDOWN * est as f64,
        "estimate went slack: exact {exact} > {SUITE_MAX_SLOWDOWN} x est {est}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Seeded random DFGs beyond the two committed seeds: admissibility
    /// holds for arbitrary generator seeds on every Table 4/5
    /// architecture.
    #[test]
    fn estimates_are_admissible_on_random_workloads(seed in any::<u64>()) {
        let kernel = random_kernel(seed, &RandomKernelConfig::default());
        for arch in presets::table_architectures() {
            let Some((est, exact)) = est_vs_exact(&kernel, &arch) else {
                continue;
            };
            prop_assert!(
                est <= exact,
                "inadmissible estimate for seed {seed} on {}: est {est} > exact {exact}",
                arch.name()
            );
        }
    }
}
