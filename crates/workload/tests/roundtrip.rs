//! Round-trip property: `parse_kernel ∘ print_kernel = id` over the
//! paper suite, every parametric generator family, and the seeded
//! random-DFG generator — plus diagnostics and liberal-syntax checks.

use proptest::prelude::*;
use rsp_workload::{generators, parse_kernel, print_kernel, random_kernel, RandomKernelConfig};

fn assert_roundtrip(k: &rsp_kernel::Kernel) {
    let text = print_kernel(k);
    let parsed = parse_kernel(&text)
        .unwrap_or_else(|e| panic!("{}: printed form fails to parse: {e}\n{text}", k.name()));
    assert_eq!(parsed, *k, "{} does not round-trip:\n{text}", k.name());
}

#[test]
fn paper_suite_round_trips() {
    for k in rsp_kernel::suite::all() {
        assert_roundtrip(&k);
    }
    assert_roundtrip(&rsp_kernel::suite::matmul(4));
}

#[test]
fn generator_families_round_trip() {
    for k in [
        generators::matmul(2),
        generators::matmul(16),
        generators::fir(32, 4),
        generators::fir(128, 8),
        generators::conv2d(8, 6, 3),
        generators::conv2d(12, 12, 3),
        generators::fft(1),
        generators::fft(64),
        generators::reduction(64, 2, 1),
        generators::reduction(256, 8, 1),
        generators::reduction(8192, 8, 8),
    ] {
        assert_roundtrip(&k);
    }
}

proptest! {
    #[test]
    fn random_kernels_round_trip(seed in any::<u64>()) {
        let k = random_kernel(seed, &RandomKernelConfig::default());
        let text = print_kernel(&k);
        let parsed = parse_kernel(&text);
        prop_assert!(parsed.is_ok(), "seed {seed}: {:?}\n{text}", parsed.err());
        prop_assert_eq!(parsed.unwrap(), k);
    }
}

#[test]
fn parser_accepts_liberal_term_syntax() {
    // Omitted zero terms, reordered terms, bare variables, negative
    // terms, and comments all normalize to the same affine form.
    let canonical = parse_kernel(
        "kernel k { elements 4 array x[12] body { n0 = load x[3 + 2*i + 0*j + 0*s] \
         n1 = store x[0 + 2*i + 0*j + 0*s], n0 } }",
    )
    .unwrap();
    let liberal = parse_kernel(
        "// a comment\nkernel k {\n  elements 4\n  array x[12]\n  body {\n    \
         n0 = load x[2*i + 5 - 2] // trailing comment\n    n1 = store x[i + i], n0\n  }\n}\n",
    )
    .unwrap();
    assert_eq!(canonical, liberal);
}

#[test]
fn quoted_names_and_escapes_survive() {
    let text = "kernel \"odd name \\\"x\\\"\" {\n  description \"line\\nbreak\\t!\"\n  \
                elements 2\n  array \"out words\"[2]\n  param \"c-1\" = -3\n  body {\n    \
                n0 = load \"out words\"[i]\n    n1 = mult n0, $\"c-1\"\n    \
                n2 = store \"out words\"[i], n1\n  }\n}\n";
    let k = parse_kernel(text).unwrap();
    assert_eq!(k.name(), "odd name \"x\"");
    assert_eq!(k.description(), "line\nbreak\t!");
    assert_eq!(k.params()[0].name, "c-1");
    assert_roundtrip(&k);
}

#[test]
fn diagnostics_carry_positions() {
    // (source, expected line, expected column, message fragment)
    let cases: &[(&str, u32, u32, &str)] = &[
        ("kernel", 1, 7, "kernel name"),
        ("kernel k {\n  bogus 1\n}", 2, 3, "unknown section"),
        (
            "kernel k {\n  elements 2\n  body {\n    n1 = nop\n  }\n}",
            4,
            5,
            "out of order",
        ),
        (
            "kernel k {\n  elements 2\n  body {\n    n0 = load q[i]\n  }\n}",
            4,
            15,
            "unknown array",
        ),
        (
            "kernel k {\n  elements 2\n  array x[4]\n  body {\n    n0 = add n1, #2\n  }\n}",
            5,
            14,
            "not defined yet",
        ),
        (
            "kernel k {\n  elements 2\n  array x[4]\n  body {\n    n0 = load x[i]\n    n1 = add n0\n  }\n}",
            6,
            10,
            "takes 2 operand(s)",
        ),
        (
            "kernel k {\n  elements 2\n  array x[4]\n  body {\n    n0 = frob #1\n  }\n}",
            5,
            10,
            "unknown operation",
        ),
        (
            "kernel k {\n  elements 2\n  array x[4]\n  body {\n    n0 = load x[w]\n  }\n}",
            5,
            17,
            "address variable",
        ),
        (
            "kernel k {\n  elements 2\n  steps 3\n  steps 4\n  body { n0 = nop }\n}",
            4,
            3,
            "duplicate `steps`",
        ),
        (
            "kernel k {\n  elements 2\n  style lockstep\n  style dataflow\n  body { n0 = nop }\n}",
            4,
            3,
            "duplicate `style`",
        ),
        ("kernel k {\n  elements 2\n}", 1, 1, "missing `body`"),
        ("kernel k {\n  body { n0 = nop }\n}", 1, 1, "missing `elements`"),
        (
            "kernel k {\n  elements 2\n  array x[1]\n  body {\n    n0 = load x[i]\n  }\n}",
            1,
            1,
            "invalid kernel",
        ),
    ];
    for (src, line, col, fragment) in cases {
        let err = parse_kernel(src).unwrap_err();
        assert!(
            err.message.contains(fragment),
            "{src:?}: message {:?} lacks {fragment:?}",
            err.message
        );
        assert_eq!(
            (err.line, err.col),
            (*line, *col),
            "{src:?}: {}",
            err.message
        );
    }
}

#[test]
fn oversized_iteration_spaces_are_rejected_before_validation() {
    // Kernel-level validation sweeps elements × steps per address
    // expression; the parser must bound the product so a hostile or
    // typo'd file errors immediately instead of spinning for hours.
    let src = "kernel k {\n  elements 16777216\n  steps 16777216\n  array x[16777216]\n  \
               body {\n    n0 = load x[i]\n    n1 = store x[i], n0\n  }\n}";
    let t = std::time::Instant::now();
    let err = parse_kernel(src).unwrap_err();
    assert!(
        err.message.contains("exceeds the supported maximum"),
        "{}",
        err.message
    );
    assert!(t.elapsed().as_secs() < 2, "rejection must be immediate");
}

#[test]
fn acc_and_carry_placement_is_enforced() {
    let acc_in_tail =
        "kernel k {\n  elements 2\n  array x[2]\n  body {\n    n0 = load x[i]\n  }\n  \
                       tail {\n    n0 = add acc(n0, 0), #1\n  }\n}";
    let err = parse_kernel(acc_in_tail).unwrap_err();
    assert!(
        err.message.contains("only valid in the body"),
        "{}",
        err.message
    );

    let carry_in_body =
        "kernel k {\n  elements 2\n  array x[2]\n  body {\n    n0 = add carry(n0), #1\n  }\n}";
    let err = parse_kernel(carry_in_body).unwrap_err();
    assert!(
        err.message.contains("only valid in the tail"),
        "{}",
        err.message
    );

    let carry_oob = "kernel k {\n  elements 2\n  array x[2]\n  body {\n    n0 = load x[i]\n  }\n  \
                     tail {\n    n0 = add carry(n7), #1\n  }\n}";
    let err = parse_kernel(carry_oob).unwrap_err();
    assert!(err.message.contains("outside the body"), "{}", err.message);
    assert_eq!(err.line, 8);
}
