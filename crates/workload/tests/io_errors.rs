//! I/O-failure contract for the `workloadgen` binary: filesystem errors
//! and usage mistakes exit non-zero with a one-line diagnostic — never a
//! panic backtrace.

use std::path::PathBuf;
use std::process::Command;

fn workloadgen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_workloadgen"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("workloadgen-io-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn assert_fails_cleanly(out: std::process::Output, fragment: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "expected failure, got: {out:?}");
    assert!(
        stderr.contains(fragment),
        "missing {fragment:?} in {stderr}"
    );
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "diagnostic must not be a panic: {stderr}"
    );
}

#[test]
fn unwritable_output_directory_fails_cleanly() {
    // A path whose parent is a regular file cannot be created.
    let blocker = tmp("blocker-file");
    std::fs::write(&blocker, "not a directory").unwrap();
    let out_dir = blocker.join("sub");
    let out = workloadgen()
        .args(["--out", out_dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "cannot create output directory");
}

#[test]
fn usage_errors_fail_cleanly() {
    let out = workloadgen().args(["--out"]).output().unwrap();
    assert_fails_cleanly(out, "--out needs a directory");

    let out = workloadgen().args(["--fmt"]).output().unwrap();
    assert_fails_cleanly(out, "--fmt needs at least one file");

    let out = workloadgen().args(["--frobnicate"]).output().unwrap();
    assert_fails_cleanly(out, "unknown argument");
}

#[test]
fn fmt_on_unreadable_file_fails_cleanly() {
    let out = workloadgen()
        .args(["--fmt", "/nonexistent/nope.dfg"])
        .output()
        .unwrap();
    assert_fails_cleanly(out, "/nonexistent/nope.dfg");
}
