//! Fuzz-style robustness test for the textual DFG parser: random
//! mutations of every committed workload must either parse or fail with
//! a well-formed [`ParseError`] — never panic — and the reported
//! line/column must point inside the mutated input.
//!
//! Deterministic (seeded `StdRng` per file × iteration), so a failure
//! reproduces exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsp_workload::parse_kernel;
use std::fs;
use std::path::PathBuf;

/// Tokens worth splicing in: keywords, delimiters, and pathological
/// literals the grammar cares about.
const DICTIONARY: &[&str] = &[
    "kernel",
    "nodes",
    "tail",
    "acc(",
    "carry(",
    "{",
    "}",
    "[",
    "]",
    "(",
    ")",
    "\"",
    "\\",
    "$",
    "#",
    ".hi",
    "=",
    ",",
    "+",
    "*",
    "-",
    "//",
    "\n",
    "0",
    "4294967296",
    "99999999999999999999999999",
    "\u{fffd}",
];

fn workload_files() -> Vec<(PathBuf, Vec<u8>)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../workloads");
    let mut files: Vec<(PathBuf, Vec<u8>)> = fs::read_dir(&dir)
        .expect("workloads/ directory")
        .filter_map(|e| {
            let path = e.unwrap().path();
            (path.extension().is_some_and(|x| x == "dfg"))
                .then(|| (path.clone(), fs::read(&path).unwrap()))
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no committed .dfg workloads found");
    files
}

/// Applies one random mutation to `bytes`.
fn mutate(bytes: &mut Vec<u8>, rng: &mut StdRng) {
    if bytes.is_empty() {
        bytes.extend_from_slice(DICTIONARY[rng.gen_range(0..DICTIONARY.len())].as_bytes());
        return;
    }
    match rng.gen_range(0..5) {
        // Flip one byte to an arbitrary value (possibly invalid UTF-8).
        0 => {
            let i = rng.gen_range(0..bytes.len());
            bytes[i] = rng.gen_range(0..=255);
        }
        // Delete a short range.
        1 => {
            let start = rng.gen_range(0..bytes.len());
            let end = (start + rng.gen_range(1usize..=24)).min(bytes.len());
            bytes.drain(start..end);
        }
        // Duplicate a range somewhere else (token soup).
        2 => {
            let start = rng.gen_range(0..bytes.len());
            let end = (start + rng.gen_range(1usize..=32)).min(bytes.len());
            let chunk: Vec<u8> = bytes[start..end].to_vec();
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, chunk);
        }
        // Insert a dictionary token.
        3 => {
            let tok = DICTIONARY[rng.gen_range(0..DICTIONARY.len())];
            let at = rng.gen_range(0..=bytes.len());
            bytes.splice(at..at, tok.bytes());
        }
        // Truncate.
        _ => {
            let at = rng.gen_range(0..bytes.len());
            bytes.truncate(at);
        }
    }
}

#[test]
fn mutated_workloads_never_panic_and_errors_point_into_the_input() {
    for (path, original) in workload_files() {
        // Per-file seed derived from the file name, so adding workloads
        // does not reshuffle existing cases.
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let base_seed: u64 = name.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
        });
        for iter in 0..300u64 {
            let mut rng = StdRng::seed_from_u64(base_seed ^ iter);
            let mut bytes = original.clone();
            for _ in 0..rng.gen_range(1..=4) {
                mutate(&mut bytes, &mut rng);
            }
            let text = String::from_utf8_lossy(&bytes).into_owned();
            // Must not panic; on error the position must be a real
            // location in the mutated text.
            match parse_kernel(&text) {
                Ok(_) => {}
                Err(e) => {
                    let lines: Vec<&str> = text.split('\n').collect();
                    assert!(
                        e.line >= 1 && (e.line as usize) <= lines.len(),
                        "{name} iter {iter}: line {} outside 1..={} ({e})",
                        e.line,
                        lines.len()
                    );
                    let line_chars = lines[e.line as usize - 1].chars().count();
                    assert!(
                        e.col >= 1 && (e.col as usize) <= line_chars + 1,
                        "{name} iter {iter}: column {} outside 1..={} on line {} ({e})",
                        e.col,
                        line_chars + 1,
                        e.line
                    );
                    assert!(!e.message.is_empty(), "{name} iter {iter}: empty message");
                }
            }
        }
    }
}

/// The unmutated committed workloads all still parse (guards against the
/// fuzz harness reading the wrong directory).
#[test]
fn committed_workloads_parse_clean() {
    for (path, bytes) in workload_files() {
        let text = String::from_utf8(bytes).unwrap();
        parse_kernel(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}
