//! The workload contract: every workload — committed, generated, or
//! random — maps, rearranges, and simulates with a final memory image
//! bit-identical to the reference evaluator (`rsp_kernel::evaluate`).
//! This is the issue's "rsp-sim becomes the functional oracle" pipeline.
//!
//! Two axes per workload:
//!
//! * **Natural cache** — the paper's 256-deep cache. Rearranged
//!   schedules that outgrow it are split across configuration-cache
//!   refills and must still simulate bit-identically; combinations with
//!   no legal cut point (2-stage multiplications in flight across every
//!   boundary) must report [`rsp_core::RspError::UnsplittableSchedule`]
//!   *and* be provably unsplittable, never silently skipped.
//! * **Forced split** — an artificially small cache (the schedule's
//!   minimum splittable depth, bumped toward thirds) forces every
//!   workload × sharing-variant combination through the splitter; the
//!   refill-stalled execution must stay bit-identical to the evaluator.

use proptest::prelude::*;
use rsp_arch::{presets, BaseArchitecture, RspArchitecture};
use rsp_core::{rearrange, RspError};
use rsp_kernel::{evaluate, Bindings, Kernel, MemoryImage};
use rsp_mapper::{map, min_splittable_depth, MapOptions};
use rsp_sim::{simulate_base, simulate_rearranged};
use rsp_workload::{random_kernel, registry, RandomKernelConfig};

/// The same sharing plan on a base with a different config-cache depth.
fn with_cache_depth(arch: &RspArchitecture, depth: usize) -> RspArchitecture {
    let b = arch.base();
    let base = BaseArchitecture::new(b.geometry(), b.pe().clone(), b.buses(), depth);
    RspArchitecture::new(arch.name().to_string(), base, arch.plan().clone()).unwrap()
}

/// Maps `kernel` onto the paper's 8×8 base, simulates the base schedule
/// and every Table 4/5 RS/RSP rearrangement, and checks each final
/// memory image against the evaluator. Oversized rearrangements run
/// split with refill stalls; unsplittable ones must prove it.
fn oracle(kernel: &Kernel, seed: u64) {
    let base = presets::base_8x8();
    let ctx = map(base.base(), kernel, &MapOptions::default())
        .unwrap_or_else(|e| panic!("{}: mapping failed: {e}", kernel.name()));
    let input = MemoryImage::random(kernel, seed);
    let params = Bindings::defaults(kernel);
    let reference = evaluate(kernel, &input, &params).unwrap();

    let report = simulate_base(&ctx, &base, kernel, &input, &params)
        .unwrap_or_else(|e| panic!("{}: base simulation failed: {e}", kernel.name()));
    assert_eq!(report.memory, reference, "{}: base schedule", kernel.name());

    for arch in presets::table_architectures() {
        match rearrange(&ctx, &arch, &Default::default()) {
            Ok(r) => {
                let report = simulate_rearranged(&ctx, &arch, &r, kernel, &input, &params)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} on {}: simulation failed: {e}",
                            kernel.name(),
                            arch.name()
                        )
                    });
                assert_eq!(
                    report.memory,
                    reference,
                    "{} on {}",
                    kernel.name(),
                    arch.name()
                );
                assert_eq!(report.refill_stalls, r.refill_stalls());
            }
            Err(RspError::UnsplittableSchedule { cache_depth, .. }) => {
                // Legitimate only when no cache of this depth can hold
                // any legal segmentation: re-derive the compact schedule
                // on an unbounded cache and check the minimum
                // splittable depth really exceeds the cache.
                let unbounded = with_cache_depth(&arch, 1 << 20);
                let r = rearrange(&ctx, &unbounded, &Default::default()).unwrap();
                let lat = |i: usize| u32::from(arch.op_latency(ctx.instances()[i].op));
                let min_depth = min_splittable_depth(&ctx, &r.cycles, lat).unwrap();
                assert!(
                    min_depth > cache_depth,
                    "{} on {}: reported unsplittable but min depth {} fits cache {}",
                    kernel.name(),
                    arch.name(),
                    min_depth,
                    cache_depth
                );
            }
            Err(e) => panic!(
                "{} on {}: rearrange failed: {e}",
                kernel.name(),
                arch.name()
            ),
        }
    }
}

/// The split-schedule axis: force every sharing variant through the
/// refill splitter with an artificially small cache and prove memory
/// stays bit-identical to the evaluator.
fn forced_split_oracle(kernel: &Kernel, seed: u64) {
    let base = presets::base_8x8();
    let ctx = map(base.base(), kernel, &MapOptions::default())
        .unwrap_or_else(|e| panic!("{}: mapping failed: {e}", kernel.name()));
    let input = MemoryImage::random(kernel, seed);
    let params = Bindings::defaults(kernel);
    let reference = evaluate(kernel, &input, &params).unwrap();

    let mut forced = 0usize;
    for arch in presets::table_architectures() {
        // Compact schedule on an unbounded cache, then the smallest
        // legal cache for it (bumped toward thirds so multi-segment
        // plans stay common).
        let unbounded = with_cache_depth(&arch, 1 << 20);
        let r = rearrange(&ctx, &unbounded, &Default::default()).unwrap();
        let lat = |i: usize| u32::from(arch.op_latency(ctx.instances()[i].op));
        let depth = min_splittable_depth(&ctx, &r.cycles, lat)
            .unwrap()
            .max(r.total_cycles / 3);
        if depth >= r.total_cycles {
            continue; // pipelined issues tile the schedule: honestly unsplittable
        }
        let small = with_cache_depth(&arch, depth as usize);
        let split = rearrange(&ctx, &small, &Default::default()).unwrap_or_else(|e| {
            panic!(
                "{} on {} (cache {depth}): rearrange failed: {e}",
                kernel.name(),
                arch.name()
            )
        });
        assert!(
            split.refill.is_split(),
            "cache {depth} did not force a split"
        );
        assert!(split.refill_stalls() > 0);
        assert_eq!(split.cycles, r.cycles, "splitting must not reschedule");
        let report = simulate_rearranged(&ctx, &small, &split, kernel, &input, &params)
            .unwrap_or_else(|e| {
                panic!(
                    "{} on {} (cache {depth}): simulation failed: {e}",
                    kernel.name(),
                    arch.name()
                )
            });
        assert_eq!(
            report.memory,
            reference,
            "{} on {} split at cache {depth}",
            kernel.name(),
            arch.name()
        );
        assert_eq!(report.refill_stalls, split.refill_stalls());
        forced += 1;
    }
    assert!(
        forced > 0,
        "{}: no sharing variant could be forced through a split",
        kernel.name()
    );
}

#[test]
fn every_registry_workload_passes_the_oracle() {
    for k in registry() {
        oracle(&k, 0xC0FFEE);
    }
}

#[test]
fn every_registry_workload_passes_the_forced_split_oracle() {
    for k in registry() {
        forced_split_oracle(&k, 0x5EED);
    }
}

#[test]
fn matmul16_splits_on_stall_heavy_variants_that_previously_overflowed() {
    // The acceptance kernel: matmul16 maps on the 8×8 base (207
    // contexts) but RS#1 rearrangement needs 561 — a guaranteed
    // CacheOverflow before the refill subsystem. It must now split,
    // charge the byte-derived stalls, and simulate bit-identically.
    let k = rsp_workload::generators::matmul(16);
    let base = presets::base_8x8();
    let ctx = map(base.base(), &k, &MapOptions::default()).unwrap();
    let input = MemoryImage::random(&k, 0xC0FFEE);
    let params = Bindings::defaults(&k);
    let reference = evaluate(&k, &input, &params).unwrap();

    let r = rearrange(&ctx, &presets::rs1(), &Default::default()).unwrap();
    assert_eq!(r.total_cycles, 561, "the ROADMAP's matmul16-on-RS#1 figure");
    assert_eq!(r.refill.segments().len(), 3, "561 contexts on a 256 cache");
    assert_eq!(r.refill_stalls(), 561 - r.refill.segments()[0].depth());
    let report = simulate_rearranged(&ctx, &presets::rs1(), &r, &k, &input, &params).unwrap();
    assert_eq!(report.memory, reference);
    assert_eq!(report.refill_stalls, r.refill_stalls());

    // The milder RS variants split (or just fit) too.
    for arch in [presets::rs2(), presets::rs3(), presets::rs4()] {
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap();
        let report = simulate_rearranged(&ctx, &arch, &r, &k, &input, &params).unwrap();
        assert_eq!(report.memory, reference, "{}", arch.name());
    }
}

#[test]
fn committed_workload_files_match_the_generators() {
    // The committed `workloads/` directory must be bit-identical to the
    // regenerated registry (the reproducibility contract documented in
    // workloads/README.md), and every committed file must parse back to
    // the generator's kernel.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workloads");
    let suite = registry();
    for k in &suite {
        let path = dir.join(format!("{}.dfg", k.name()));
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: unreadable ({e}) — run workloadgen", path.display()));
        assert_eq!(
            on_disk,
            rsp_workload::render_workload_file(k),
            "{} drifted — regenerate with `cargo run -p rsp-workload --bin workloadgen`",
            path.display()
        );
        assert_eq!(&rsp_workload::parse_kernel(&on_disk).unwrap(), k);
    }
    // And nothing extra lives there.
    let mut stray: Vec<String> = std::fs::read_dir(&dir)
        .expect("workloads/ exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|f| f.ends_with(".dfg"))
        .filter(|f| !suite.iter().any(|k| format!("{}.dfg", k.name()) == *f))
        .collect();
    stray.sort();
    assert!(stray.is_empty(), "unexpected workload files: {stray:?}");
}

proptest! {
    #[test]
    fn random_workloads_pass_the_oracle(seed in any::<u64>()) {
        oracle(&random_kernel(seed, &RandomKernelConfig::default()), seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_workloads_pass_the_forced_split_oracle(seed in any::<u64>()) {
        forced_split_oracle(&random_kernel(seed, &RandomKernelConfig::default()), seed);
    }
}
