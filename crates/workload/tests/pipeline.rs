//! The workload contract: every workload — committed, generated, or
//! random — maps, rearranges, and simulates with a final memory image
//! bit-identical to the reference evaluator (`rsp_kernel::evaluate`).
//! This is the issue's "rsp-sim becomes the functional oracle" pipeline.

use proptest::prelude::*;
use rsp_arch::presets;
use rsp_core::rearrange;
use rsp_kernel::{evaluate, Bindings, Kernel, MemoryImage};
use rsp_mapper::{map, MapOptions};
use rsp_sim::{simulate_base, simulate_rearranged};
use rsp_workload::{random_kernel, registry, RandomKernelConfig};

/// Maps `kernel` onto the paper's 8×8 base, simulates the base schedule
/// and every Table 4/5 RS/RSP rearrangement, and checks each final
/// memory image against the evaluator.
fn oracle(kernel: &Kernel, seed: u64) {
    let base = presets::base_8x8();
    let ctx = map(base.base(), kernel, &MapOptions::default())
        .unwrap_or_else(|e| panic!("{}: mapping failed: {e}", kernel.name()));
    let input = MemoryImage::random(kernel, seed);
    let params = Bindings::defaults(kernel);
    let reference = evaluate(kernel, &input, &params).unwrap();

    let report = simulate_base(&ctx, &base, kernel, &input, &params)
        .unwrap_or_else(|e| panic!("{}: base simulation failed: {e}", kernel.name()));
    assert_eq!(report.memory, reference, "{}: base schedule", kernel.name());

    for arch in presets::table_architectures() {
        let r = rearrange(&ctx, &arch, &Default::default()).unwrap_or_else(|e| {
            panic!(
                "{} on {}: rearrange failed: {e}",
                kernel.name(),
                arch.name()
            )
        });
        let report =
            simulate_rearranged(&ctx, &arch, &r, kernel, &input, &params).unwrap_or_else(|e| {
                panic!(
                    "{} on {}: simulation failed: {e}",
                    kernel.name(),
                    arch.name()
                )
            });
        assert_eq!(
            report.memory,
            reference,
            "{} on {}",
            kernel.name(),
            arch.name()
        );
    }
}

#[test]
fn every_registry_workload_passes_the_oracle() {
    for k in registry() {
        oracle(&k, 0xC0FFEE);
    }
}

#[test]
fn committed_workload_files_match_the_generators() {
    // The committed `workloads/` directory must be bit-identical to the
    // regenerated registry (the reproducibility contract documented in
    // workloads/README.md), and every committed file must parse back to
    // the generator's kernel.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../workloads");
    let suite = registry();
    for k in &suite {
        let path = dir.join(format!("{}.dfg", k.name()));
        let on_disk = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: unreadable ({e}) — run workloadgen", path.display()));
        assert_eq!(
            on_disk,
            rsp_workload::render_workload_file(k),
            "{} drifted — regenerate with `cargo run -p rsp-workload --bin workloadgen`",
            path.display()
        );
        assert_eq!(&rsp_workload::parse_kernel(&on_disk).unwrap(), k);
    }
    // And nothing extra lives there.
    let mut stray: Vec<String> = std::fs::read_dir(&dir)
        .expect("workloads/ exists")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|f| f.ends_with(".dfg"))
        .filter(|f| !suite.iter().any(|k| format!("{}.dfg", k.name()) == *f))
        .collect();
    stray.sort();
    assert!(stray.is_empty(), "unexpected workload files: {stray:?}");
}

proptest! {
    #[test]
    fn random_workloads_pass_the_oracle(seed in any::<u64>()) {
        oracle(&random_kernel(seed, &RandomKernelConfig::default()), seed);
    }
}
