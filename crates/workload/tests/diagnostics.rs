//! Table-driven diagnostics contract for the textual DFG parser: every
//! malformed input maps to an **exact** 1-based line/column and an
//! **exact** message. The round-trip tests only cover the canonical
//! form; this file pins the error surface for hand-written workloads —
//! duplicate sections, bad addresses, bounds violations, and the
//! iteration-space cap.

use rsp_workload::parse_kernel;

struct Case {
    name: &'static str,
    input: &'static str,
    line: u32,
    col: u32,
    message: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "duplicate elements section",
        input: "kernel \"k\" {\n  elements 4\n  elements 5\n  body { n0 = nop }\n}\n",
        line: 3,
        col: 3,
        message: "duplicate `elements`",
    },
    Case {
        name: "duplicate body section",
        input: "kernel \"k\" {\n  elements 4\n  body { n0 = nop }\n  body { n0 = nop }\n}\n",
        line: 4,
        col: 3,
        message: "duplicate `body`",
    },
    Case {
        name: "duplicate style section",
        input: "kernel \"k\" {\n  elements 4\n  style lockstep\n  style dataflow\n  body { n0 = nop }\n}\n",
        line: 4,
        col: 3,
        message: "duplicate `style`",
    },
    Case {
        name: "duplicate array declaration",
        input: "kernel \"k\" {\n  elements 4\n  array x[8]\n  array x[8]\n  body { n0 = nop }\n}\n",
        line: 4,
        col: 9,
        message: "duplicate array `x`",
    },
    Case {
        name: "duplicate parameter declaration",
        input: "kernel \"k\" {\n  elements 4\n  param a = 1\n  param a = 2\n  body { n0 = nop }\n}\n",
        line: 4,
        col: 9,
        message: "duplicate parameter `a`",
    },
    Case {
        name: "unknown array in address",
        input: "kernel \"k\" {\n  elements 4\n  array x[8]\n  body {\n    n0 = load y[i]\n  }\n}\n",
        line: 5,
        col: 15,
        message: "unknown array `y` (arrays must be declared before use)",
    },
    Case {
        name: "unknown address variable",
        input: "kernel \"k\" {\n  elements 4\n  array x[8]\n  body {\n    n0 = load x[2*k]\n  }\n}\n",
        line: 5,
        col: 19,
        message: "unknown address variable `k` (use `i`, `j`, or `s`)",
    },
    Case {
        name: "empty address expression",
        input: "kernel \"k\" {\n  elements 4\n  array x[8]\n  body {\n    n0 = load x[]\n  }\n}\n",
        line: 5,
        col: 17,
        message: "expected address term, found `]`",
    },
    Case {
        name: "address walks out of its array",
        input: "kernel \"k\" {\n  elements 4\n  array x[2]\n  body {\n    n0 = load x[i]\n  }\n}\n",
        line: 1,
        col: 1,
        message: "invalid kernel: address 2 into array 0 out of bounds at element 2, step 0",
    },
    Case {
        name: "oversized iteration space",
        input: "kernel \"k\" {\n  elements 70000\n  steps 300\n  body { n0 = nop }\n}\n",
        line: 1,
        col: 1,
        message: "iteration space elements × steps = 70000 × 300 exceeds the supported \
                  maximum (2^24 body iterations)",
    },
    Case {
        name: "node label out of order",
        input: "kernel \"k\" {\n  elements 4\n  body {\n    n0 = nop\n    n2 = nop\n  }\n}\n",
        line: 5,
        col: 5,
        message: "node label n2 out of order (expected n1)",
    },
    Case {
        name: "forward operand reference",
        input: "kernel \"k\" {\n  elements 4\n  body {\n    n0 = add n1, n1\n    n1 = nop\n  }\n}\n",
        line: 4,
        col: 14,
        message: "node n1 is not defined yet (operands may only reference earlier nodes)",
    },
    Case {
        name: "unknown operation keyword",
        input: "kernel \"k\" {\n  elements 4\n  body {\n    n0 = fma n0, n0\n  }\n}\n",
        line: 4,
        col: 10,
        message: "unknown operation `fma`",
    },
    Case {
        name: "arity mismatch",
        input: "kernel \"k\" {\n  elements 4\n  body {\n    n0 = nop\n    n1 = add n0\n  }\n}\n",
        line: 5,
        col: 10,
        message: "`add` takes 2 operand(s), found 1",
    },
    Case {
        name: "unknown section keyword",
        input: "kernel \"k\" {\n  elements 4\n  bodies { n0 = nop }\n}\n",
        line: 3,
        col: 3,
        message: "unknown section `bodies` (expected description, elements, steps, divisor, \
                  style, array, param, body, or tail)",
    },
    Case {
        name: "tail before body",
        input: "kernel \"k\" {\n  elements 4\n  tail { n0 = nop }\n  body { n0 = nop }\n}\n",
        line: 3,
        col: 3,
        message: "`tail` must come after `body` (carry(..) references body nodes)",
    },
    Case {
        name: "accumulator reference outside the body",
        input: "kernel \"k\" {\n  elements 4\n  body {\n    n0 = nop\n    n1 = add acc(n9, 0), n0\n  }\n}\n",
        line: 5,
        col: 18,
        message: "acc(n9) references a node outside the body (body has 2 nodes)",
    },
    Case {
        name: "unterminated string literal",
        input: "kernel \"k {\n  elements 4\n}\n",
        line: 1,
        col: 8,
        message: "unterminated string literal (strings may not span lines)",
    },
    Case {
        name: "missing body section",
        input: "kernel \"k\" {\n  elements 4\n}\n",
        line: 1,
        col: 1,
        message: "missing `body` section",
    },
    Case {
        name: "missing elements section",
        input: "kernel \"k\" {\n  body { n0 = nop }\n}\n",
        line: 1,
        col: 1,
        message: "missing `elements` section",
    },
];

#[test]
fn every_malformed_input_reports_exact_position_and_message() {
    let mut failures = Vec::new();
    for case in CASES {
        let err = match parse_kernel(case.input) {
            Err(e) => e,
            Ok(_) => {
                failures.push(format!("{}: unexpectedly parsed", case.name));
                continue;
            }
        };
        if (err.line, err.col) != (case.line, case.col) || err.message != case.message {
            failures.push(format!(
                "{}:\n  expected {}:{} {:?}\n  actual   {}:{} {:?}",
                case.name, case.line, case.col, case.message, err.line, err.col, err.message
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn display_includes_position() {
    let err = parse_kernel("kernel \"k\" {\n  elements 4\n  elements 5\n}").unwrap_err();
    assert_eq!(err.to_string(), "line 3, column 3: duplicate `elements`");
}
