//! # rsp-serve — exploration as a long-running service
//!
//! A thread-pool `std::net` line-protocol server over one shared
//! [`rsp_core::Session`]: clients send JSON [`proto::Envelope`] lines
//! (kernels as `rsp_workload` textual DFG source) and get map / explore
//! / flow answers concurrently, all served from the session's
//! process-wide caches — synthesis reports keyed by `(geometry, plan)`,
//! kernel profiles keyed by kernel hash — so a stream of overlapping
//! requests synthesizes each plan once instead of once per request.
//!
//! Engine invariants carry over to the wire:
//!
//! * **Bit identity** — a served request returns the same bits as the
//!   single-shot CLI run (caches are pure memos; the serve tests compare
//!   serialized responses byte-for-byte against in-process runs).
//! * **Anytime limits** — [`proto::Limits`] maps onto
//!   [`rsp_core::ExploreControl`]: per-request deadlines and candidate
//!   budgets truncate that request only, returning best-so-far results
//!   flagged `complete: false`.
//! * **Panic isolation** — every request body runs under
//!   `catch_unwind`; a poisoned request answers
//!   [`proto::Response::Error`] and the worker (and the connection)
//!   keep serving.
//! * **Diagnostics, not disconnects** — malformed lines answer with a
//!   one-line error naming the field (the serde-stub error paths), and
//!   a version mismatch is rejected against
//!   [`proto::PROTOCOL_VERSION`] before the body is examined.
//!
//! # Observability
//!
//! The server is instrumented with `rsp_obs`: every stage of the
//! request lifecycle — accept, queue wait, parse, execute, reply write
//! — emits events under the `serve` target, correlated by the wire
//! envelope `id`, to the recorder in [`ServeConfig::recorder`]
//! (defaulting to the process-global recorder, a no-op unless
//! installed). Independent of any recorder, the server keeps live
//! counters and a request-latency histogram, snapshotted over the wire
//! by [`proto::Request::Stats`] as a [`proto::StatsReply`]. With the
//! default [`rsp_obs::NullRecorder`] the instrumentation is a handful
//! of relaxed atomic increments per request.
//!
//! # Examples
//!
//! ```
//! use rsp_serve::proto::{Request, Response};
//! use rsp_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::spawn(ServeConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! assert_eq!(client.call(Request::Ping)?, Response::Pong);
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod proto;

mod client;
mod metrics;
pub use client::Client;

use metrics::{hit_rate, ServerMetrics};
use proto::{
    Envelope, ExploreReply, ExploreRequest, FlowReply, FlowRequest, FrontierPoint, Limits,
    MapReply, MapRequest, Reply, Request, Response, SpaceSpec, StatsReply, PROTOCOL_VERSION,
    STATS_SCHEMA_VERSION,
};
use rsp_core::{AppProfile, DesignSpace, ExploreControl, Session};
use rsp_kernel::Kernel;
use rsp_obs::{Event, EventKind, Recorder, Span, Value as ObsValue};
use rsp_workload::parse_kernel;
use serde::Value;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a worker blocks in one read before re-checking the shutdown
/// flag (also bounds shutdown latency for idle connections).
const READ_POLL: Duration = Duration::from_millis(50);

/// Accept-loop poll interval (the listener is non-blocking so the
/// accept thread can observe shutdown).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Port 0 picks a free port (read it back with
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads — the number of connections served concurrently.
    pub workers: usize,
    /// Recorder for request-lifecycle events (`serve` target: accept,
    /// queue wait, parse, execute, reject, panic, request). Defaults to
    /// the process-global recorder — a no-op unless one is installed
    /// with `rsp_obs::set_global`.
    pub recorder: Arc<dyn Recorder>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            recorder: rsp_obs::global(),
        }
    }
}

/// Everything a worker needs to answer a line: the shared session, the
/// server's live metrics, and the event recorder.
#[derive(Debug)]
struct ServerCtx {
    session: Arc<Session>,
    metrics: ServerMetrics,
    obs: Arc<dyn Recorder>,
}

/// A running server: accept thread + worker pool over one shared
/// [`Session`]. Shut down explicitly with [`Server::shutdown`] (or
/// implicitly on drop).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    ctx: Arc<ServerCtx>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool, and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(config: ServeConfig) -> io::Result<Server> {
        Self::with_session(config, Arc::new(Session::builder().build()))
    }

    /// Like [`Server::spawn`] but serving an existing session — lets a
    /// host process pre-warm caches or observe [`Session::stats`]
    /// directly.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn with_session(config: ServeConfig, session: Arc<Session>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let ctx = Arc::new(ServerCtx {
            session,
            metrics: ServerMetrics::new(),
            obs: Arc::clone(&config.recorder),
        });

        // The channel carries the accept timestamp so the dequeuing
        // worker can report the connection's queue wait.
        let (tx, rx): (Sender<QueuedConn>, Receiver<QueuedConn>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::with_capacity(config.workers + 1);
        for n in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let ctx = Arc::clone(&ctx);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rsp-serve-worker-{n}"))
                    .spawn(move || worker_loop(&rx, &ctx, &stop))
                    .expect("spawn worker"),
            );
        }
        {
            let stop = Arc::clone(&stop);
            let ctx = Arc::clone(&ctx);
            threads.push(
                std::thread::Builder::new()
                    .name("rsp-serve-accept".into())
                    .spawn(move || accept_loop(&listener, &tx, &ctx, &stop))
                    .expect("spawn acceptor"),
            );
        }
        Ok(Server {
            addr,
            ctx,
            stop,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session this server answers from.
    pub fn session(&self) -> Arc<Session> {
        Arc::clone(&self.ctx.session)
    }

    /// Stops accepting, drains workers, and joins every thread. Open
    /// connections are closed at the next read-poll boundary
    /// (≤ the 50 ms read poll plus the in-flight request's remaining work).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// An accepted connection plus its accept timestamp, so the dequeuing
/// worker can report how long the connection waited in the queue.
type QueuedConn = (TcpStream, Instant);

fn accept_loop(
    listener: &TcpListener,
    tx: &Sender<QueuedConn>,
    ctx: &ServerCtx,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                ctx.metrics.queue_depth.inc();
                rsp_obs::point(&*ctx.obs, "serve", "accept", 0, &[]);
                // A send failure means every worker exited — stop too.
                if tx.send((stream, Instant::now())).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<QueuedConn>>>, ctx: &ServerCtx, stop: &AtomicBool) {
    loop {
        // Poll the queue with a timeout so shutdown is observed even
        // when no connection ever arrives.
        let next = {
            let rx = rx.lock().unwrap();
            rx.recv_timeout(READ_POLL)
        };
        match next {
            Ok((stream, accepted)) => {
                ctx.metrics.queue_depth.dec();
                if ctx.obs.enabled() {
                    ctx.obs.record(&Event {
                        target: "serve",
                        name: "queue_wait",
                        id: 0,
                        kind: EventKind::Span {
                            elapsed_ns: accepted.elapsed().as_nanos() as u64,
                        },
                        fields: &[],
                    });
                }
                serve_connection(stream, ctx, stop);
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one connection until the peer closes it or shutdown is
/// requested. Frames by `\n` with a manual byte buffer (a blocking
/// `BufReader::read_line` could hold a partial line across the read
/// timeout and lose it).
fn serve_connection(mut stream: TcpStream, ctx: &ServerCtx, stop: &AtomicBool) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    // Replies are single small lines; don't let Nagle hold them back.
    let _ = stream.set_nodelay(true);
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let started = Instant::now();
                    let (reply, outcome) = handle_line(line, ctx);
                    let mut out = serde_json::to_string(&reply)
                        .unwrap_or_else(|e| format!(r#"{{"id":0,"body":{{"Error":"{e}"}}}}"#));
                    out.push('\n');
                    // Account *before* the write: a reply the peer has
                    // received is already visible in Stats and in the
                    // recorder.
                    account_line(ctx, &reply, outcome, started.elapsed());
                    let write_start = ctx.obs.enabled().then(Instant::now);
                    if stream.write_all(out.as_bytes()).is_err() {
                        return;
                    }
                    if let Some(start) = write_start {
                        ctx.obs.record(&Event {
                            target: "serve",
                            name: "write",
                            id: reply.id,
                            kind: EventKind::Span {
                                elapsed_ns: start.elapsed().as_nanos() as u64,
                            },
                            fields: &[],
                        });
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// How one line fared — the pre-dispatch/dispatch distinction the reply
/// body alone cannot carry (all three failure shapes answer
/// [`Response::Error`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineOutcome {
    /// Decoded and dispatched (the reply may still be an engine error).
    Ok,
    /// Rejected before dispatch: bad JSON, version mismatch, schema.
    Rejected,
    /// The dispatched request panicked and was isolated.
    Faulted,
}

impl LineOutcome {
    fn label(self) -> &'static str {
        match self {
            LineOutcome::Ok => "ok",
            LineOutcome::Rejected => "rejected",
            LineOutcome::Faulted => "faulted",
        }
    }
}

/// Accounting for one answered line: outcome counters, the latency
/// histogram, and the per-request `serve/request` span. Runs after the
/// reply is serialized and before it is written, so a reply the peer
/// has received is already counted, and `requests` and `latency` are
/// updated together — a `Stats` snapshot taken at any instant sees
/// `latency_count == wire_requests`.
fn account_line(ctx: &ServerCtx, reply: &Reply, outcome: LineOutcome, elapsed: Duration) {
    let m = &ctx.metrics;
    m.requests.inc();
    m.latency.observe(elapsed.as_nanos() as u64);
    match outcome {
        LineOutcome::Rejected => m.rejected.inc(),
        LineOutcome::Faulted => m.faulted.inc(),
        LineOutcome::Ok => {}
    }
    match &reply.body {
        Response::Explored(e) => {
            if e.complete {
                m.completed.inc();
            } else {
                m.truncated.inc();
            }
        }
        Response::Flowed(f) => {
            m.flows.inc();
            if f.complete {
                m.completed.inc();
            } else {
                m.truncated.inc();
            }
        }
        _ => {}
    }
    if ctx.obs.enabled() {
        ctx.obs.record(&Event {
            target: "serve",
            name: "request",
            id: reply.id,
            kind: EventKind::Span {
                elapsed_ns: elapsed.as_nanos() as u64,
            },
            fields: &[("outcome", ObsValue::Str(outcome.label()))],
        });
    }
}

/// Decodes one request line and dispatches it. Never panics the caller:
/// decode failures answer with a field-naming diagnostic, dispatch runs
/// under `catch_unwind`, and a panicking request answers an error while
/// the worker lives on. Returns the reply plus how the line fared (for
/// the caller's outcome counters).
fn handle_line(line: &str, ctx: &ServerCtx) -> (Reply, LineOutcome) {
    let obs = &*ctx.obs;
    let reject = |id: u64, reason: &'static str, diagnostic: String| {
        rsp_obs::point(
            obs,
            "serve",
            "reject",
            id,
            &[("reason", ObsValue::Str(reason))],
        );
        (
            Reply {
                id,
                body: Response::Error(diagnostic),
            },
            LineOutcome::Rejected,
        )
    };
    // Stage 1: generic JSON, so the version check and the id salvage
    // work even when the body is malformed.
    let parse_start = obs.enabled().then(Instant::now);
    let value: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return reject(0, "json", format!("{e}")),
    };
    let id = match value.get("id") {
        Some(Value::Int(i)) => u64::try_from(*i).unwrap_or(0),
        _ => 0,
    };
    match value.get("v") {
        Some(Value::Int(v)) if *v == i128::from(PROTOCOL_VERSION) => {}
        other => {
            return reject(
                id,
                "version",
                format!(
                    "unsupported protocol version {other:?} in field `v` (this server speaks {PROTOCOL_VERSION})"
                ),
            )
        }
    }
    // Stage 2: the typed envelope (field-naming diagnostics on error).
    let env: Envelope = match serde_json::from_value(value) {
        Ok(env) => env,
        Err(e) => return reject(id, "schema", format!("{e}")),
    };
    if let Some(start) = parse_start {
        obs.record(&Event {
            target: "serve",
            name: "parse",
            id: env.id,
            kind: EventKind::Span {
                elapsed_ns: start.elapsed().as_nanos() as u64,
            },
            fields: &[],
        });
    }
    // Stage 3: dispatch, panic-isolated per request.
    let execute_span = Span::enter(obs, "serve", "execute", env.id);
    let caught = catch_unwind(AssertUnwindSafe(|| dispatch(env.body, ctx)));
    drop(execute_span);
    let (body, outcome) = match caught {
        Ok(body) => (body, LineOutcome::Ok),
        Err(panic) => {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            rsp_obs::point(
                obs,
                "serve",
                "panic",
                env.id,
                &[("what", ObsValue::Str(&what))],
            );
            (
                Response::Error(format!("request panicked (isolated): {what}")),
                LineOutcome::Faulted,
            )
        }
    };
    (Reply { id: env.id, body }, outcome)
}

fn space_of(spec: SpaceSpec) -> DesignSpace {
    match spec {
        SpaceSpec::Paper => DesignSpace::paper(),
        SpaceSpec::Extended => DesignSpace::extended(),
        SpaceSpec::Deep => DesignSpace::deep(),
    }
}

fn control_of(limits: &Limits) -> ExploreControl {
    ExploreControl {
        deadline: limits.deadline_ms.map(Duration::from_millis),
        candidate_budget: limits.candidate_budget.map(|b| b as usize),
        ..ExploreControl::default()
    }
}

// The Err variant is a ready-to-send wire `Response`; its size is the
// wire type's, not worth boxing on this cold error path.
#[allow(clippy::result_large_err)]
fn parse_dfg(source: &str) -> Result<Kernel, Response> {
    parse_kernel(source).map_err(|e| Response::Error(format!("kernel source: {e}")))
}

/// Builds the versioned [`StatsReply`] snapshot from the session's
/// cache counters and the server's live metrics.
fn stats_reply(ctx: &ServerCtx) -> StatsReply {
    let s = ctx.session.stats();
    let m = &ctx.metrics;
    StatsReply {
        schema: STATS_SCHEMA_VERSION,
        uptime_ms: m.uptime_ms(),
        model_reports: s.model_reports as u64,
        model_hits: s.model_hits,
        model_misses: s.model_misses,
        model_hit_rate: hit_rate(s.model_hits, s.model_misses),
        profile_entries: s.profile_entries as u64,
        profile_hits: s.profile_hits,
        profile_misses: s.profile_misses,
        profile_hit_rate: hit_rate(s.profile_hits, s.profile_misses),
        mapped_contexts: s.mapped_contexts as u64,
        context_hits: s.context_hits,
        context_misses: s.context_misses,
        context_hit_rate: hit_rate(s.context_hits, s.context_misses),
        requests: s.requests,
        wire_requests: m.requests.get(),
        rejected: m.rejected.get(),
        faulted: m.faulted.get(),
        truncated: m.truncated.get(),
        completed: m.completed.get(),
        flows: m.flows.get(),
        queue_depth: m.queue_depth.get(),
        latency_count: m.latency.count(),
        latency_p50_us: m.latency.quantile(0.50) / 1_000,
        latency_p90_us: m.latency.quantile(0.90) / 1_000,
        latency_p99_us: m.latency.quantile(0.99) / 1_000,
        latency_max_us: m.latency.max_ns() / 1_000,
    }
}

/// Executes one decoded request against the session. Engine errors
/// (infeasible designs, mapper rejections, interrupted flows) become
/// [`Response::Error`] lines; panics are the caller's `catch_unwind`'s
/// business.
fn dispatch(request: Request, ctx: &ServerCtx) -> Response {
    let session = &*ctx.session;
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(stats_reply(ctx)),
        Request::Map(MapRequest { kernel, rows, cols }) => {
            let kernel = match parse_dfg(&kernel) {
                Ok(k) => k,
                Err(e) => return e,
            };
            let base = session.base(rows as usize, cols as usize);
            match session.map(&base, &kernel) {
                Ok(ctx) => Response::Mapped(MapReply {
                    kernel: ctx.kernel_name().to_string(),
                    cycles: u64::from(ctx.total_cycles()),
                    initiation_interval: u64::from(ctx.initiation_interval()),
                    instances: ctx.instances().len() as u64,
                }),
                Err(e) => Response::Error(format!("{e}")),
            }
        }
        Request::Explore(ExploreRequest {
            kernels,
            weights,
            rows,
            cols,
            space,
            limits,
        }) => {
            let mut parsed = Vec::with_capacity(kernels.len());
            for source in &kernels {
                match parse_dfg(source) {
                    Ok(k) => parsed.push(k),
                    Err(e) => return e,
                }
            }
            // Deliberately *not* length-checked here: a mismatched
            // weight vector exercises the engine's own invariants and
            // the panic-isolation path (tested in tests/server.rs).
            let weights = weights.unwrap_or_else(|| vec![1.0; parsed.len()]);
            let base = session.base(rows as usize, cols as usize);
            match session.explore(
                &base,
                &parsed,
                &weights,
                &space_of(space),
                control_of(&limits),
            ) {
                Ok(result) => Response::Explored(ExploreReply {
                    feasible: result.feasible.len() as u64,
                    frontier: result
                        .pareto_points()
                        .map(|p| FrontierPoint {
                            name: p.arch.name().to_string(),
                            area_slices: p.area_slices,
                            est_et_ns: p.est_et_ns,
                        })
                        .collect(),
                    best: result.try_best_point().map(|p| p.arch.name().to_string()),
                    base_et_ns: result.base_et_ns,
                    candidates_seen: result.stats.candidates_seen as u64,
                    candidates_pruned: result.stats.candidates_pruned as u64,
                    complete: result.completeness.is_complete(),
                }),
                Err(e) => Response::Error(format!("{e}")),
            }
        }
        Request::Flow(FlowRequest {
            apps,
            geometries,
            space,
            limits,
        }) => {
            let mut profiles = Vec::with_capacity(apps.len());
            for app in apps {
                let mut kernels = Vec::with_capacity(app.kernels.len());
                for (source, runs) in &app.kernels {
                    match parse_dfg(source) {
                        Ok(k) => kernels.push((k, *runs)),
                        Err(e) => return e,
                    }
                }
                profiles.push(AppProfile::new(&app.name, kernels));
            }
            let mut config = session.flow_config(space_of(space), control_of(&limits));
            if let Some(geometries) = geometries {
                config.geometries = geometries
                    .into_iter()
                    .map(|(r, c)| (r as usize, c as usize))
                    .collect();
            }
            match rsp_core::run_flow(&profiles, &config) {
                Ok(report) => Response::Flowed(FlowReply {
                    base_pe_count: report.base.geometry().pe_count() as u64,
                    chosen: report.chosen.name().to_string(),
                    area_slices: report.area_slices,
                    base_area_slices: report.base_area_slices,
                    weighted_et_ns: report.weighted_et_ns(),
                    feasible: report.exploration.feasible.len() as u64,
                    critical_loops: report.critical_loops.len() as u64,
                    refill_segments: report.stats.refill_segments as u64,
                    refill_stall_cycles: report.stats.refill_stall_cycles,
                    complete: report.completeness.is_complete(),
                }),
                Err(e) => Response::Error(format!("{e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_obs::NullRecorder;

    fn test_ctx() -> ServerCtx {
        ServerCtx {
            session: Arc::new(Session::builder().build()),
            metrics: ServerMetrics::new(),
            obs: Arc::new(NullRecorder),
        }
    }

    #[test]
    fn handle_line_rejects_garbage_and_salvages_ids() {
        let ctx = test_ctx();
        // Not JSON at all.
        let (r, outcome) = handle_line("not json", &ctx);
        assert_eq!(r.id, 0);
        assert!(matches!(r.body, Response::Error(_)));
        assert_eq!(outcome, LineOutcome::Rejected);
        // Wrong version, id salvaged.
        let (r, outcome) = handle_line(r#"{"v": 99, "id": 7, "body": "Ping"}"#, &ctx);
        assert_eq!(r.id, 7);
        assert_eq!(outcome, LineOutcome::Rejected);
        match r.body {
            Response::Error(msg) => assert!(msg.contains('2') && msg.contains("version")),
            other => panic!("expected version error, got {other:?}"),
        }
        // Well-formed ping.
        let (r, outcome) = handle_line(r#"{"v": 2, "id": 8, "body": "Ping"}"#, &ctx);
        assert_eq!(r.id, 8);
        assert_eq!(r.body, Response::Pong);
        assert_eq!(outcome, LineOutcome::Ok);
    }

    #[test]
    fn dispatch_maps_a_dfg_kernel() {
        let ctx = test_ctx();
        let source = rsp_workload::print_kernel(&rsp_kernel::suite::sad());
        let reply = dispatch(
            Request::Map(MapRequest {
                kernel: source,
                rows: 8,
                cols: 8,
            }),
            &ctx,
        );
        match reply {
            Response::Mapped(m) => {
                assert_eq!(m.kernel, "SAD");
                assert!(m.cycles > 0);
                assert!(m.instances > 0);
            }
            other => panic!("expected Mapped, got {other:?}"),
        }
        // The mapped context landed in the session memo.
        assert_eq!(ctx.session.stats().mapped_contexts, 1);
    }

    #[test]
    fn dispatch_reports_parse_errors_with_positions() {
        let ctx = test_ctx();
        let reply = dispatch(
            Request::Map(MapRequest {
                kernel: "kernel \"x\" {\n  bogus 3\n}".into(),
                rows: 8,
                cols: 8,
            }),
            &ctx,
        );
        match reply {
            Response::Error(msg) => {
                assert!(msg.contains("2"), "diagnostic names the line: {msg}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn stats_snapshot_is_versioned_and_self_consistent() {
        let ctx = test_ctx();
        // Simulate two answered lines the way serve_connection accounts
        // them, then snapshot.
        let (ping, outcome) = handle_line(r#"{"v": 2, "id": 1, "body": "Ping"}"#, &ctx);
        account_line(&ctx, &ping, outcome, Duration::from_micros(120));
        let (bad, outcome) = handle_line("not json", &ctx);
        account_line(&ctx, &bad, outcome, Duration::from_micros(15));
        let s = stats_reply(&ctx);
        assert_eq!(s.schema, STATS_SCHEMA_VERSION);
        assert_eq!(s.wire_requests, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.latency_count, s.wire_requests);
        assert!(s.latency_p50_us <= s.latency_p99_us);
        assert!(s.latency_p99_us <= s.latency_max_us.max(s.latency_p99_us));
        assert_eq!(s.queue_depth, 0);
    }
}
