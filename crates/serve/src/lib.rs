//! # rsp-serve — exploration as a long-running service
//!
//! A thread-pool `std::net` line-protocol server over one shared
//! [`rsp_core::Session`]: clients send JSON [`proto::Envelope`] lines
//! (kernels as `rsp_workload` textual DFG source) and get map / explore
//! / flow answers concurrently, all served from the session's
//! process-wide caches — synthesis reports keyed by `(geometry, plan)`,
//! kernel profiles keyed by kernel hash — so a stream of overlapping
//! requests synthesizes each plan once instead of once per request.
//!
//! Engine invariants carry over to the wire:
//!
//! * **Bit identity** — a served request returns the same bits as the
//!   single-shot CLI run (caches are pure memos; the serve tests compare
//!   serialized responses byte-for-byte against in-process runs).
//! * **Anytime limits** — [`proto::Limits`] maps onto
//!   [`rsp_core::ExploreControl`]: per-request deadlines and candidate
//!   budgets truncate that request only, returning best-so-far results
//!   flagged `complete: false`.
//! * **Panic isolation** — every request body runs under
//!   `catch_unwind`; a poisoned request answers
//!   [`proto::Response::Error`] and the worker (and the connection)
//!   keep serving.
//! * **Diagnostics, not disconnects** — malformed lines answer with a
//!   one-line error naming the field (the serde-stub error paths), and
//!   a version mismatch is rejected against
//!   [`proto::PROTOCOL_VERSION`] before the body is examined.
//!
//! # Examples
//!
//! ```
//! use rsp_serve::proto::{Request, Response};
//! use rsp_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::spawn(ServeConfig::default())?;
//! let mut client = Client::connect(server.addr())?;
//! assert_eq!(client.call(Request::Ping)?, Response::Pong);
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod proto;

mod client;
pub use client::Client;

use proto::{
    Envelope, ExploreReply, ExploreRequest, FlowReply, FlowRequest, FrontierPoint, Limits,
    MapReply, MapRequest, Reply, Request, Response, SpaceSpec, StatsReply, PROTOCOL_VERSION,
};
use rsp_core::{AppProfile, DesignSpace, ExploreControl, Session};
use rsp_kernel::Kernel;
use rsp_workload::parse_kernel;
use serde::Value;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a worker blocks in one read before re-checking the shutdown
/// flag (also bounds shutdown latency for idle connections).
const READ_POLL: Duration = Duration::from_millis(50);

/// Accept-loop poll interval (the listener is non-blocking so the
/// accept thread can observe shutdown).
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. Port 0 picks a free port (read it back with
    /// [`Server::addr`]).
    pub addr: String,
    /// Worker threads — the number of connections served concurrently.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
        }
    }
}

/// A running server: accept thread + worker pool over one shared
/// [`Session`]. Shut down explicitly with [`Server::shutdown`] (or
/// implicitly on drop).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    session: Arc<Session>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool, and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(config: ServeConfig) -> io::Result<Server> {
        Self::with_session(config, Arc::new(Session::builder().build()))
    }

    /// Like [`Server::spawn`] but serving an existing session — lets a
    /// host process pre-warm caches or observe [`Session::stats`]
    /// directly.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn with_session(config: ServeConfig, session: Arc<Session>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let mut threads = Vec::with_capacity(config.workers + 1);
        for n in 0..config.workers.max(1) {
            let rx = Arc::clone(&rx);
            let session = Arc::clone(&session);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rsp-serve-worker-{n}"))
                    .spawn(move || worker_loop(&rx, &session, &stop))
                    .expect("spawn worker"),
            );
        }
        {
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name("rsp-serve-accept".into())
                    .spawn(move || accept_loop(&listener, &tx, &stop))
                    .expect("spawn acceptor"),
            );
        }
        Ok(Server {
            addr,
            session,
            stop,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session this server answers from.
    pub fn session(&self) -> Arc<Session> {
        Arc::clone(&self.session)
    }

    /// Stops accepting, drains workers, and joins every thread. Open
    /// connections are closed at the next read-poll boundary
    /// (≤ the 50 ms read poll plus the in-flight request's remaining work).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, tx: &Sender<TcpStream>, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // A send failure means every worker exited — stop too.
                if tx.send(stream).is_err() {
                    return;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, session: &Session, stop: &AtomicBool) {
    loop {
        // Poll the queue with a timeout so shutdown is observed even
        // when no connection ever arrives.
        let next = {
            let rx = rx.lock().unwrap();
            rx.recv_timeout(READ_POLL)
        };
        match next {
            Ok(stream) => serve_connection(stream, session, stop),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Serves one connection until the peer closes it or shutdown is
/// requested. Frames by `\n` with a manual byte buffer (a blocking
/// `BufReader::read_line` could hold a partial line across the read
/// timeout and lose it).
fn serve_connection(mut stream: TcpStream, session: &Session, stop: &AtomicBool) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    // Replies are single small lines; don't let Nagle hold them back.
    let _ = stream.set_nodelay(true);
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                pending.extend_from_slice(&chunk[..n]);
                while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]);
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let reply = handle_line(line, session);
                    let mut out = serde_json::to_string(&reply)
                        .unwrap_or_else(|e| format!(r#"{{"id":0,"body":{{"Error":"{e}"}}}}"#));
                    out.push('\n');
                    if stream.write_all(out.as_bytes()).is_err() {
                        return;
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Decodes one request line and dispatches it. Never panics the caller:
/// decode failures answer with a field-naming diagnostic, dispatch runs
/// under `catch_unwind`, and a panicking request answers an error while
/// the worker lives on.
fn handle_line(line: &str, session: &Session) -> Reply {
    // Stage 1: generic JSON, so the version check and the id salvage
    // work even when the body is malformed.
    let value: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => {
            return Reply {
                id: 0,
                body: Response::Error(format!("{e}")),
            }
        }
    };
    let id = match value.get("id") {
        Some(Value::Int(i)) => u64::try_from(*i).unwrap_or(0),
        _ => 0,
    };
    match value.get("v") {
        Some(Value::Int(v)) if *v == i128::from(PROTOCOL_VERSION) => {}
        other => {
            return Reply {
                id,
                body: Response::Error(format!(
                    "unsupported protocol version {other:?} in field `v` (this server speaks {PROTOCOL_VERSION})"
                )),
            }
        }
    }
    // Stage 2: the typed envelope (field-naming diagnostics on error).
    let env: Envelope = match serde_json::from_value(value) {
        Ok(env) => env,
        Err(e) => {
            return Reply {
                id,
                body: Response::Error(format!("{e}")),
            }
        }
    };
    // Stage 3: dispatch, panic-isolated per request.
    let body =
        catch_unwind(AssertUnwindSafe(|| dispatch(env.body, session))).unwrap_or_else(|panic| {
            let what = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            Response::Error(format!("request panicked (isolated): {what}"))
        });
    Reply { id: env.id, body }
}

fn space_of(spec: SpaceSpec) -> DesignSpace {
    match spec {
        SpaceSpec::Paper => DesignSpace::paper(),
        SpaceSpec::Extended => DesignSpace::extended(),
        SpaceSpec::Deep => DesignSpace::deep(),
    }
}

fn control_of(limits: &Limits) -> ExploreControl {
    ExploreControl {
        deadline: limits.deadline_ms.map(Duration::from_millis),
        candidate_budget: limits.candidate_budget.map(|b| b as usize),
        ..ExploreControl::default()
    }
}

fn parse_dfg(source: &str) -> Result<Kernel, Response> {
    parse_kernel(source).map_err(|e| Response::Error(format!("kernel source: {e}")))
}

/// Executes one decoded request against the session. Engine errors
/// (infeasible designs, mapper rejections, interrupted flows) become
/// [`Response::Error`] lines; panics are the caller's `catch_unwind`'s
/// business.
fn dispatch(request: Request, session: &Session) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => {
            let s = session.stats();
            Response::Stats(StatsReply {
                model_reports: s.model_reports as u64,
                model_hits: s.model_hits,
                model_misses: s.model_misses,
                profile_entries: s.profile_entries as u64,
                profile_hits: s.profile_hits,
                profile_misses: s.profile_misses,
                mapped_contexts: s.mapped_contexts as u64,
                requests: s.requests,
            })
        }
        Request::Map(MapRequest { kernel, rows, cols }) => {
            let kernel = match parse_dfg(&kernel) {
                Ok(k) => k,
                Err(e) => return e,
            };
            let base = session.base(rows as usize, cols as usize);
            match session.map(&base, &kernel) {
                Ok(ctx) => Response::Mapped(MapReply {
                    kernel: ctx.kernel_name().to_string(),
                    cycles: u64::from(ctx.total_cycles()),
                    initiation_interval: u64::from(ctx.initiation_interval()),
                    instances: ctx.instances().len() as u64,
                }),
                Err(e) => Response::Error(format!("{e}")),
            }
        }
        Request::Explore(ExploreRequest {
            kernels,
            weights,
            rows,
            cols,
            space,
            limits,
        }) => {
            let mut parsed = Vec::with_capacity(kernels.len());
            for source in &kernels {
                match parse_dfg(source) {
                    Ok(k) => parsed.push(k),
                    Err(e) => return e,
                }
            }
            // Deliberately *not* length-checked here: a mismatched
            // weight vector exercises the engine's own invariants and
            // the panic-isolation path (tested in tests/server.rs).
            let weights = weights.unwrap_or_else(|| vec![1.0; parsed.len()]);
            let base = session.base(rows as usize, cols as usize);
            match session.explore(
                &base,
                &parsed,
                &weights,
                &space_of(space),
                control_of(&limits),
            ) {
                Ok(result) => Response::Explored(ExploreReply {
                    feasible: result.feasible.len() as u64,
                    frontier: result
                        .pareto_points()
                        .map(|p| FrontierPoint {
                            name: p.arch.name().to_string(),
                            area_slices: p.area_slices,
                            est_et_ns: p.est_et_ns,
                        })
                        .collect(),
                    best: result.try_best_point().map(|p| p.arch.name().to_string()),
                    base_et_ns: result.base_et_ns,
                    candidates_seen: result.stats.candidates_seen as u64,
                    candidates_pruned: result.stats.candidates_pruned as u64,
                    complete: result.completeness.is_complete(),
                }),
                Err(e) => Response::Error(format!("{e}")),
            }
        }
        Request::Flow(FlowRequest {
            apps,
            geometries,
            space,
            limits,
        }) => {
            let mut profiles = Vec::with_capacity(apps.len());
            for app in apps {
                let mut kernels = Vec::with_capacity(app.kernels.len());
                for (source, runs) in &app.kernels {
                    match parse_dfg(source) {
                        Ok(k) => kernels.push((k, *runs)),
                        Err(e) => return e,
                    }
                }
                profiles.push(AppProfile::new(&app.name, kernels));
            }
            let mut config = session.flow_config(space_of(space), control_of(&limits));
            if let Some(geometries) = geometries {
                config.geometries = geometries
                    .into_iter()
                    .map(|(r, c)| (r as usize, c as usize))
                    .collect();
            }
            match rsp_core::run_flow(&profiles, &config) {
                Ok(report) => Response::Flowed(FlowReply {
                    base_pe_count: report.base.geometry().pe_count() as u64,
                    chosen: report.chosen.name().to_string(),
                    area_slices: report.area_slices,
                    base_area_slices: report.base_area_slices,
                    weighted_et_ns: report.weighted_et_ns(),
                    feasible: report.exploration.feasible.len() as u64,
                    critical_loops: report.critical_loops.len() as u64,
                    refill_segments: report.stats.refill_segments as u64,
                    refill_stall_cycles: report.stats.refill_stall_cycles,
                    complete: report.completeness.is_complete(),
                }),
                Err(e) => Response::Error(format!("{e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_line_rejects_garbage_and_salvages_ids() {
        let session = Session::builder().build();
        // Not JSON at all.
        let r = handle_line("not json", &session);
        assert_eq!(r.id, 0);
        assert!(matches!(r.body, Response::Error(_)));
        // Wrong version, id salvaged.
        let r = handle_line(r#"{"v": 99, "id": 7, "body": "Ping"}"#, &session);
        assert_eq!(r.id, 7);
        match r.body {
            Response::Error(msg) => assert!(msg.contains('1') && msg.contains("version")),
            other => panic!("expected version error, got {other:?}"),
        }
        // Well-formed ping.
        let r = handle_line(r#"{"v": 1, "id": 8, "body": "Ping"}"#, &session);
        assert_eq!(r.id, 8);
        assert_eq!(r.body, Response::Pong);
    }

    #[test]
    fn dispatch_maps_a_dfg_kernel() {
        let session = Session::builder().build();
        let source = rsp_workload::print_kernel(&rsp_kernel::suite::sad());
        let reply = dispatch(
            Request::Map(MapRequest {
                kernel: source,
                rows: 8,
                cols: 8,
            }),
            &session,
        );
        match reply {
            Response::Mapped(m) => {
                assert_eq!(m.kernel, "SAD");
                assert!(m.cycles > 0);
                assert!(m.instances > 0);
            }
            other => panic!("expected Mapped, got {other:?}"),
        }
        // The mapped context landed in the session memo.
        assert_eq!(session.stats().mapped_contexts, 1);
    }

    #[test]
    fn dispatch_reports_parse_errors_with_positions() {
        let session = Session::builder().build();
        let reply = dispatch(
            Request::Map(MapRequest {
                kernel: "kernel \"x\" {\n  bogus 3\n}".into(),
                rows: 8,
                cols: 8,
            }),
            &session,
        );
        match reply {
            Response::Error(msg) => {
                assert!(msg.contains("2"), "diagnostic names the line: {msg}");
            }
            other => panic!("expected Error, got {other:?}"),
        }
    }
}
