//! The typed wire protocol: versioned request/response envelopes.
//!
//! One JSON object per line, both directions (the *line protocol*).
//! Kernels travel as the textual DFG format (`rsp_workload`) — the same
//! source text `workloads/*.dfg` files hold — so any workload the CLI
//! accepts is a valid wire payload. Requests are [`Envelope`]s carrying
//! a protocol version, a client-chosen correlation id, and a
//! [`Request`]; the server answers with a [`Reply`] echoing the id.
//!
//! Malformed input never panics the connection: parse/validation
//! failures come back as [`Response::Error`] with a one-line diagnostic
//! naming the offending field (the serde-stub error paths), and a
//! version mismatch is reported against [`PROTOCOL_VERSION`] before the
//! body is even examined.
//!
//! # Grammar
//!
//! ```text
//! request   = "{" '"v"' ":" version "," '"id"' ":" integer ","
//!             '"body"' ":" body "}" "\n"
//! body      = '"Ping"' | '"Stats"'
//!           | "{" '"Map"'     ":" map-req     "}"
//!           | "{" '"Explore"' ":" explore-req "}"
//!           | "{" '"Flow"'    ":" flow-req    "}"
//! reply     = "{" '"id"' ":" integer "," '"body"' ":" response "}" "\n"
//! ```
//!
//! with `map-req` / `explore-req` / `flow-req` the JSON forms of
//! [`MapRequest`] / [`ExploreRequest`] / [`FlowRequest`] (kernel fields
//! are DFG source strings) and `response` the externally tagged
//! [`Response`]. See the README's *serve* section for a worked session.

use serde::{Deserialize, Serialize};

/// Version both sides must speak. Bumped on any wire-visible change;
/// the server rejects other versions with a [`Response::Error`] naming
/// the expected version, so old clients fail with a diagnostic instead
/// of a decode mystery.
///
/// History: v1 — initial line protocol; v2 — [`StatsReply`] grew the
/// observability snapshot (uptime, request-latency quantiles, queue
/// depth, cache hit rates, outcome counters).
pub const PROTOCOL_VERSION: u32 = 2;

/// Schema version stamped into every [`StatsReply`] (its `schema`
/// field), so clients can detect snapshot-shape changes independently
/// of the envelope version.
pub const STATS_SCHEMA_VERSION: u32 = 2;

/// One request line: version, client-chosen correlation id, body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    pub v: u32,
    /// Correlation id, echoed verbatim in the [`Reply`].
    pub id: u64,
    /// The request.
    pub body: Request,
}

/// One response line: the request's id plus the outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reply {
    /// The correlation id of the request this answers (0 when the
    /// request was too malformed to carry one).
    pub id: u64,
    /// The outcome.
    pub body: Response,
}

/// Per-request execution limits, mapped onto `rsp_core::ExploreControl`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Limits {
    /// Wall-clock deadline in milliseconds (`null` = none). A request
    /// over deadline returns its anytime best-so-far, flagged
    /// incomplete, or an `Error` if nothing usable was reached.
    pub deadline_ms: Option<u64>,
    /// Candidate budget (`null` = none) — the machine-independent,
    /// reproducible truncation knob.
    pub candidate_budget: Option<u64>,
}

impl Limits {
    /// No limits.
    pub fn none() -> Self {
        Limits {
            deadline_ms: None,
            candidate_budget: None,
        }
    }
}

/// Which RSP design space to sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpaceSpec {
    /// The paper's 12-point space (`DesignSpace::paper`).
    Paper,
    /// The multi-kind extended space (`DesignSpace::extended`).
    Extended,
    /// The 480-candidate deep space (`DesignSpace::deep`).
    Deep,
}

/// Map one kernel onto a base array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapRequest {
    /// Kernel as textual DFG source.
    pub kernel: String,
    /// Base array rows.
    pub rows: u64,
    /// Base array columns.
    pub cols: u64,
}

/// Explore a design space for a set of kernels on one base geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreRequest {
    /// Kernels as textual DFG sources.
    pub kernels: Vec<String>,
    /// Execution weights, parallel to `kernels` (`null` = uniform).
    pub weights: Option<Vec<f64>>,
    /// Base array rows.
    pub rows: u64,
    /// Base array columns.
    pub cols: u64,
    /// The space to sweep.
    pub space: SpaceSpec,
    /// Per-request limits.
    pub limits: Limits,
}

/// One application in a flow request: named kernel sources with
/// execution counts (the profiling input).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadApp {
    /// Application name.
    pub name: String,
    /// `(DFG source, execution count)` pairs.
    pub kernels: Vec<(String, u64)>,
}

/// Run the full Fig. 7 flow for a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowRequest {
    /// The applications to profile.
    pub apps: Vec<WorkloadApp>,
    /// Candidate base geometries (`null` = the session default).
    pub geometries: Option<Vec<(u64, u64)>>,
    /// The space to sweep.
    pub space: SpaceSpec,
    /// Per-request limits.
    pub limits: Limits,
}

/// Everything a client can ask.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Cache/request counters; answered with [`Response::Stats`].
    Stats,
    /// Map one kernel; answered with [`Response::Mapped`].
    Map(MapRequest),
    /// Design-space exploration; answered with [`Response::Explored`].
    Explore(ExploreRequest),
    /// Full flow; answered with [`Response::Flowed`].
    Flow(FlowRequest),
}

/// The versioned metrics snapshot: session cache counters (see
/// `rsp_core::SessionStats`) plus the server's own request-lifecycle
/// metrics (uptime, latency quantiles, queue depth, outcome counters).
///
/// Self-consistency invariants, asserted by `rsp-serve --self-test`
/// through the wire: `latency_count == wire_requests` (the latency
/// histogram records exactly one observation per answered line),
/// `wire_requests >= flows`, and `latency_p50_us <= latency_p90_us <=
/// latency_p99_us <= latency_max_us`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Snapshot shape version ([`STATS_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Milliseconds since the server spawned.
    pub uptime_ms: u64,
    /// Distinct plans holding full synthesis reports.
    pub model_reports: u64,
    /// Synthesis-memo hits — cross-request reuse, observable.
    pub model_hits: u64,
    /// Synthesis-memo misses.
    pub model_misses: u64,
    /// Synthesis-memo hit rate (`0.0` before the first lookup).
    pub model_hit_rate: f64,
    /// Distinct kernel profiles cached.
    pub profile_entries: u64,
    /// Profile-memo hits.
    pub profile_hits: u64,
    /// Profile-memo misses.
    pub profile_misses: u64,
    /// Profile-memo hit rate (`0.0` before the first lookup).
    pub profile_hit_rate: f64,
    /// Distinct mapped contexts cached.
    pub mapped_contexts: u64,
    /// Mapped-context memo hits.
    pub context_hits: u64,
    /// Mapped-context memo misses.
    pub context_misses: u64,
    /// Mapped-context memo hit rate (`0.0` before the first lookup).
    pub context_hit_rate: f64,
    /// Requests answered through the session so far.
    pub requests: u64,
    /// Wire request lines answered (any outcome). Counted before the
    /// reply is written, so a reply the client has received is already
    /// included.
    pub wire_requests: u64,
    /// Lines rejected before dispatch (bad JSON, version mismatch,
    /// schema errors).
    pub rejected: u64,
    /// Isolated per-request panics.
    pub faulted: u64,
    /// Explore/flow replies truncated by per-request [`Limits`].
    pub truncated: u64,
    /// Explore/flow replies that ran to completion.
    pub completed: u64,
    /// Flow requests answered.
    pub flows: u64,
    /// Connections accepted but not yet picked up by a worker.
    pub queue_depth: i64,
    /// Observations in the request-latency histogram.
    pub latency_count: u64,
    /// Median request latency, microseconds (≤ 2× relative error).
    pub latency_p50_us: u64,
    /// 90th-percentile request latency, microseconds.
    pub latency_p90_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub latency_p99_us: u64,
    /// Largest request latency, microseconds.
    pub latency_max_us: u64,
}

/// A mapped kernel's headline numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapReply {
    /// Kernel name (from the DFG source).
    pub kernel: String,
    /// Schedule depth in configuration-context cycles.
    pub cycles: u64,
    /// Initiation interval.
    pub initiation_interval: u64,
    /// Placed operation instances.
    pub instances: u64,
}

/// One Pareto-frontier point of an exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Architecture name (encodes the sharing plan).
    pub name: String,
    /// Synthesized area (slices).
    pub area_slices: f64,
    /// Weighted estimated execution time (ns).
    pub est_et_ns: f64,
}

/// An exploration's result surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreReply {
    /// Feasible candidate count.
    pub feasible: u64,
    /// The (area, time) Pareto frontier, smallest area first.
    pub frontier: Vec<FrontierPoint>,
    /// Selected optimum's name (`null` when a truncated run has none).
    pub best: Option<String>,
    /// Weighted base execution time (ns).
    pub base_et_ns: f64,
    /// Candidates enumerated.
    pub candidates_seen: u64,
    /// Candidates pruned.
    pub candidates_pruned: u64,
    /// Whether the whole candidate stream was processed (`false` = the
    /// request's [`Limits`] truncated it; results are best-so-far).
    pub complete: bool,
}

/// A flow's result surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReply {
    /// PE count of the selected base geometry.
    pub base_pe_count: u64,
    /// Chosen RSP architecture name.
    pub chosen: String,
    /// Synthesized area of the chosen design (slices).
    pub area_slices: f64,
    /// Area of the base design (slices).
    pub base_area_slices: f64,
    /// Weighted exact execution time on the chosen design (ns).
    pub weighted_et_ns: f64,
    /// Feasible exploration candidates.
    pub feasible: u64,
    /// Selected critical loops.
    pub critical_loops: u64,
    /// Schedules split into cache-sized segments by the refill model.
    pub refill_segments: u64,
    /// Refill-stall cycles those splits charged.
    pub refill_stall_cycles: u64,
    /// Whether every phase ran to completion (`false` = truncated by
    /// the request's [`Limits`]; results are best-so-far).
    pub complete: bool,
}

/// Everything the server can answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// Counter snapshot.
    Stats(StatsReply),
    /// Mapping result.
    Mapped(MapReply),
    /// Exploration result.
    Explored(ExploreReply),
    /// Flow result.
    Flowed(FlowReply),
    /// Request-level failure: one line naming what was wrong (schema
    /// field, DFG parse position, version mismatch, engine error, or an
    /// isolated panic). The connection stays usable.
    Error(String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // The vendored proptest stub implements `Arbitrary` for integers
    // and bool only, so strings/floats/options get explicit strategies.
    fn arb_name() -> impl Strategy<Value = String> {
        any::<u64>().prop_map(|n| match n % 4 {
            0 => String::new(),
            1 => "saxpy".into(),
            2 => format!("kernel \"k{}\" {{}}", n % 97),
            _ => format!("name with \"quotes\" and\nnewlines {n}"),
        })
    }

    fn arb_f64() -> impl Strategy<Value = f64> {
        // Finite, sign- and fraction-bearing; equality-safe (no NaN).
        any::<i64>().prop_map(|n| n as f64 / 3.0)
    }

    fn arb_opt_u64() -> impl Strategy<Value = Option<u64>> {
        (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))
    }

    fn arb_limits() -> impl Strategy<Value = Limits> {
        (arb_opt_u64(), arb_opt_u64()).prop_map(|(deadline_ms, candidate_budget)| Limits {
            deadline_ms,
            candidate_budget,
        })
    }

    fn arb_space() -> impl Strategy<Value = SpaceSpec> {
        prop_oneof![
            Just(SpaceSpec::Paper),
            Just(SpaceSpec::Extended),
            Just(SpaceSpec::Deep),
        ]
    }

    // The stub's `prop_oneof!` needs same-typed arms, so one selector
    // tuple drives all five request variants through a single map.
    fn arb_request() -> impl Strategy<Value = Request> {
        let scalars = (0..5u64, arb_name(), 1..16u64, 1..16u64);
        let explore_parts = (
            prop::collection::vec(arb_name(), 0..3),
            (any::<bool>(), prop::collection::vec(arb_f64(), 0..3)),
            arb_space(),
            arb_limits(),
        );
        let flow_parts = (
            prop::collection::vec(
                (
                    arb_name(),
                    prop::collection::vec((arb_name(), any::<u64>()), 0..3),
                ),
                0..2,
            ),
            (
                any::<bool>(),
                prop::collection::vec((1..16u64, 1..16u64), 0..3),
            ),
        );
        (scalars, explore_parts, flow_parts).prop_map(
            |(
                (sel, kernel, rows, cols),
                (kernels, (w_some, w), space, limits),
                (apps, (g_some, g)),
            )| match sel {
                0 => Request::Ping,
                1 => Request::Stats,
                2 => Request::Map(MapRequest { kernel, rows, cols }),
                3 => Request::Explore(ExploreRequest {
                    kernels,
                    weights: w_some.then_some(w),
                    rows,
                    cols,
                    space,
                    limits,
                }),
                _ => Request::Flow(FlowRequest {
                    apps: apps
                        .into_iter()
                        .map(|(name, kernels)| WorkloadApp { name, kernels })
                        .collect(),
                    geometries: g_some.then_some(g),
                    space,
                    limits,
                }),
            },
        )
    }

    proptest! {
        #[test]
        fn envelopes_round_trip_the_wire(body in arb_request(), id in any::<u64>()) {
            let env = Envelope { v: PROTOCOL_VERSION, id, body };
            let line = serde_json::to_string(&env).unwrap();
            let back: Envelope = serde_json::from_str(&line).unwrap();
            prop_assert_eq!(back, env);
        }

        #[test]
        fn replies_round_trip_the_wire(id in any::<u64>(), feasible in any::<u64>(),
                                       area in arb_f64(), et in arb_f64()) {
            // Floats round-trip bit-exactly (shortest-round-trip
            // formatting) — the property the bit-identity tests lean on.
            let reply = Reply {
                id,
                body: Response::Explored(ExploreReply {
                    feasible,
                    frontier: vec![FrontierPoint {
                        name: "RSP#2".into(),
                        area_slices: area,
                        est_et_ns: et,
                    }],
                    best: Some("RSP#2".into()),
                    base_et_ns: et,
                    candidates_seen: 12,
                    candidates_pruned: 3,
                    complete: true,
                }),
            };
            let line = serde_json::to_string(&reply).unwrap();
            let back: Reply = serde_json::from_str(&line).unwrap();
            match (&back.body, &reply.body) {
                (Response::Explored(b), Response::Explored(a)) => {
                    prop_assert_eq!(b.frontier[0].area_slices.to_bits(),
                                    a.frontier[0].area_slices.to_bits());
                    prop_assert_eq!(b.base_et_ns.to_bits(), a.base_et_ns.to_bits());
                }
                _ => prop_assert!(false, "variant changed in flight"),
            }
            prop_assert_eq!(back.id, reply.id);
        }
    }

    #[test]
    fn malformed_requests_name_the_field() {
        // Each case: broken line → the diagnostic names what is wrong.
        let cases: &[(&str, &str)] = &[
            (r#"{"id": 1, "body": "Ping"}"#, "v"),
            (r#"{"v": 2, "body": "Ping"}"#, "id"),
            (r#"{"v": 2, "id": 2}"#, "body"),
            (r#"{"v": 2, "id": 2, "body": "Quack"}"#, "Quack"),
            (
                r#"{"v": 2, "id": 2, "body": {"Map": {"rows": 8, "cols": 8}}}"#,
                "kernel",
            ),
            (
                r#"{"v": 2, "id": 2, "body": {"Explore": {"kernels": [], "weights": null, "rows": 8, "cols": 8, "space": "Paper"}}}"#,
                "limits",
            ),
        ];
        for (line, needle) in cases {
            let err = serde_json::from_str::<Envelope>(line).unwrap_err();
            let msg = format!("{err}");
            assert!(
                msg.contains(needle),
                "diagnostic for {line:?} should name {needle:?}, got: {msg}"
            );
            assert!(!msg.contains('\n'), "one-line diagnostic, got: {msg}");
        }
    }
}
