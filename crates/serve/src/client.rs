//! Blocking line-protocol client.

use crate::proto::{Envelope, Reply, Request, Response, PROTOCOL_VERSION};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking client: one TCP connection, one in-flight request at a
/// time. Correlation ids are assigned internally and checked on every
/// reply.
///
/// Protocol-level failures ([`Response::Error`]) are returned as normal
/// responses — the connection stays usable; only transport failures
/// (and undecodable replies) surface as [`io::Error`].
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        // Requests are single small lines followed by a blocking read;
        // Nagle + delayed ACK would add ~40ms to every call.
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            writer,
            reader,
            next_id: 1,
        })
    }

    /// Sends one request and blocks for its reply.
    ///
    /// # Errors
    ///
    /// Transport failures, a reply that is not valid protocol JSON, or
    /// a reply whose correlation id does not match the request's.
    pub fn call(&mut self, body: Request) -> io::Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        let env = Envelope {
            v: PROTOCOL_VERSION,
            id,
            body,
        };
        let mut line = serde_json::to_string(&env)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        // One write per request: a separate one-byte `\n` write would sit
        // in the Nagle queue behind the unacknowledged body segment.
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;

        let mut reply_line = String::new();
        if self.reader.read_line(&mut reply_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let reply: Reply = serde_json::from_str(reply_line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // A request too malformed to carry an id is answered with id 0;
        // that cannot happen for envelopes this client assembled itself,
        // so any mismatch is a framing bug worth failing loudly on.
        if reply.id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("reply id {} does not match request id {id}", reply.id),
            ));
        }
        Ok(reply.body)
    }
}
