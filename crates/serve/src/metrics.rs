//! Server-side metrics: request lifecycle counters and the latency
//! histogram behind the wire `Stats` snapshot.

use rsp_obs::{Counter, Gauge, Histogram};
use std::time::Instant;

/// Live counters of one [`Server`](crate::Server). All atomics —
/// workers update them lock-free; `Stats` requests snapshot them.
///
/// Counting discipline: `requests` and `latency` are updated together,
/// after execution and before the reply is written — so a reply the
/// peer has received is already counted, and at every instant
/// `latency.count() == requests` (the self-consistency the extended
/// `rsp-serve --self-test` asserts through the wire).
#[derive(Debug)]
pub(crate) struct ServerMetrics {
    start: Instant,
    /// Request lines answered (any outcome).
    pub requests: Counter,
    /// Lines rejected before dispatch: bad JSON, version mismatch,
    /// schema errors.
    pub rejected: Counter,
    /// Isolated per-request panics (the request answered an error; the
    /// worker lives on).
    pub faulted: Counter,
    /// Explore/flow replies flagged `complete: false` (anytime limits).
    pub truncated: Counter,
    /// Explore/flow replies flagged `complete: true`.
    pub completed: Counter,
    /// Flow requests served successfully.
    pub flows: Counter,
    /// Connections accepted but not yet picked up by a worker.
    pub queue_depth: Gauge,
    /// Per-request wall latency (line received → reply written).
    pub latency: Histogram,
}

impl ServerMetrics {
    pub(crate) fn new() -> Self {
        ServerMetrics {
            start: Instant::now(),
            requests: Counter::new(),
            rejected: Counter::new(),
            faulted: Counter::new(),
            truncated: Counter::new(),
            completed: Counter::new(),
            flows: Counter::new(),
            queue_depth: Gauge::new(),
            latency: Histogram::new(),
        }
    }

    /// Milliseconds since the server spawned.
    pub(crate) fn uptime_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }
}

/// `hits / (hits + misses)`, 0.0 before the first lookup.
pub(crate) fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_full() {
        assert_eq!(hit_rate(0, 0), 0.0);
        assert_eq!(hit_rate(3, 1), 0.75);
        assert_eq!(hit_rate(5, 0), 1.0);
    }

    #[test]
    fn metrics_start_empty() {
        let m = ServerMetrics::new();
        assert_eq!(m.requests.get(), 0);
        assert_eq!(m.latency.count(), 0);
        assert_eq!(m.queue_depth.get(), 0);
    }
}
