//! End-to-end server tests: concurrent requests over real sockets,
//! bit-identical to in-process engine runs, with observable
//! cross-request cache reuse and per-request panic isolation.

use rsp_core::{explore_with, DesignSpace, ExploreOptions, Session, SessionStats};
use rsp_kernel::suite;
use rsp_mapper::{map, MapOptions};
use rsp_serve::proto::{
    ExploreRequest, FlowRequest, Limits, MapRequest, Request, Response, SpaceSpec, WorkloadApp,
};
use rsp_serve::{Client, ServeConfig, Server};
use rsp_workload::print_kernel;

fn dfg(k: &rsp_kernel::Kernel) -> String {
    print_kernel(k)
}

fn explore_request() -> Request {
    Request::Explore(ExploreRequest {
        kernels: vec![dfg(&suite::fdct()), dfg(&suite::sad())],
        weights: None,
        rows: 8,
        cols: 8,
        space: SpaceSpec::Paper,
        limits: Limits::none(),
    })
}

/// The reference result computed in-process, serialized exactly like
/// the server serializes its reply — byte equality means bit identity
/// (the wire format's float rendering is shortest-round-trip).
fn reference_explore_reply() -> Response {
    let session = Session::builder().build();
    let base = session.base(8, 8);
    let kernels = [suite::fdct(), suite::sad()];
    let contexts: Vec<_> = kernels
        .iter()
        .map(|k| map(&base, k, &MapOptions::default()).unwrap())
        .collect();
    let result = explore_with(
        &base,
        &kernels,
        &contexts,
        &[1.0, 1.0],
        &DesignSpace::paper(),
        &ExploreOptions::default(),
    )
    .unwrap();
    Response::Explored(rsp_serve::proto::ExploreReply {
        feasible: result.feasible.len() as u64,
        frontier: result
            .pareto_points()
            .map(|p| rsp_serve::proto::FrontierPoint {
                name: p.arch.name().to_string(),
                area_slices: p.area_slices,
                est_et_ns: p.est_et_ns,
            })
            .collect(),
        best: Some(result.best_point().arch.name().to_string()),
        base_et_ns: result.base_et_ns,
        candidates_seen: result.stats.candidates_seen as u64,
        candidates_pruned: result.stats.candidates_pruned as u64,
        complete: true,
    })
}

fn stats_of(client: &mut Client) -> rsp_serve::proto::StatsReply {
    match client.call(Request::Stats).unwrap() {
        Response::Stats(s) => s,
        other => panic!("expected Stats, got {other:?}"),
    }
}

#[test]
fn concurrent_explores_are_bit_identical_and_share_the_cache() {
    let server = Server::spawn(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let reference = serde_json::to_string(&reference_explore_reply()).unwrap();

    // Four clients, each issuing the same overlapping explore twice,
    // all in flight at once.
    let replies: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let mut client = Client::connect(addr).unwrap();
                    (0..2)
                        .map(|_| {
                            let r = client.call(explore_request()).unwrap();
                            assert!(matches!(r, Response::Explored(_)), "got {r:?}");
                            serde_json::to_string(&r).unwrap()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(replies.len(), 8);
    for r in &replies {
        assert_eq!(r, &reference, "served result differs from in-process run");
    }

    // Cross-request reuse is observable: eight identical explores over
    // the paper space synthesized each plan once, everything else hit.
    let mut client = Client::connect(addr).unwrap();
    let stats = stats_of(&mut client);
    assert!(
        stats.model_hits > 0,
        "expected synthesis-memo hits, got {stats:?}"
    );
    // Misses are bounded by racing cold starts (4 workers × plans, and
    // the area fast path counts separately); hits come from the seven
    // warm requests sweeping every plan again, so reuse dominates.
    assert!(
        stats.model_hits > stats.model_misses,
        "reuse should dominate: {stats:?}"
    );
    assert_eq!(stats.profile_entries, 2, "one profile per kernel");
    // Exact accounting: every request looks up both kernels, and each
    // lookup is a hit or a miss — racing cold starts shift the split
    // (several of the 8 in-flight explores can miss together before
    // the first profile lands) but never the sum, and warm lookups
    // always at least match the cold ones.
    assert_eq!(
        stats.profile_hits + stats.profile_misses,
        2 * 8,
        "eight requests × two kernels: {stats:?}"
    );
    assert!(stats.profile_misses >= 2, "each kernel profiles cold once");
    assert!(
        stats.profile_hits >= stats.profile_misses,
        "reuse at least matches cold starts: {stats:?}"
    );
    assert_eq!(stats.mapped_contexts, 2);
    server.shutdown();
}

#[test]
fn serves_map_and_flow_and_survives_panicking_requests() {
    let server = Server::spawn(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Map round trip.
    match client
        .call(Request::Map(MapRequest {
            kernel: dfg(&suite::inner_product()),
            rows: 8,
            cols: 8,
        }))
        .unwrap()
    {
        Response::Mapped(m) => {
            assert!(m.cycles > 0);
            assert!(m.initiation_interval > 0);
        }
        other => panic!("expected Mapped, got {other:?}"),
    }

    // A poisoned request: mismatched weights length panics inside the
    // engine; the worker isolates it and answers an error...
    let poisoned = client
        .call(Request::Explore(ExploreRequest {
            kernels: vec![dfg(&suite::fdct())],
            weights: Some(vec![1.0, 2.0, 3.0]),
            rows: 8,
            cols: 8,
            space: SpaceSpec::Paper,
            limits: Limits::none(),
        }))
        .unwrap();
    match poisoned {
        Response::Error(msg) => assert!(
            msg.contains("panicked"),
            "expected isolation diagnostic, got: {msg}"
        ),
        other => panic!("expected Error, got {other:?}"),
    }

    // ...and the same connection keeps working afterwards.
    let flow = client
        .call(Request::Flow(FlowRequest {
            apps: vec![WorkloadApp {
                name: "video".into(),
                kernels: vec![(dfg(&suite::fdct()), 99), (dfg(&suite::sad()), 396)],
            }],
            geometries: None,
            space: SpaceSpec::Paper,
            limits: Limits::none(),
        }))
        .unwrap();
    match flow {
        Response::Flowed(f) => {
            assert_eq!(f.base_pe_count, 64);
            assert!(f.complete);
            assert!(f.area_slices > 0.0);
            assert!(f.weighted_et_ns > 0.0);
            assert_eq!(f.critical_loops, 2);
        }
        other => panic!("expected Flowed, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn served_flow_matches_in_process_session_flow() {
    let apps = vec![rsp_core::AppProfile::new(
        "video",
        vec![(suite::fdct(), 99), (suite::sad(), 396)],
    )];
    let session = Session::builder().build();
    let report = session
        .flow(
            &apps,
            DesignSpace::paper(),
            rsp_core::ExploreControl::default(),
        )
        .unwrap();

    let server = Server::spawn(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let served = client
        .call(Request::Flow(FlowRequest {
            apps: vec![WorkloadApp {
                name: "video".into(),
                kernels: vec![(dfg(&suite::fdct()), 99), (dfg(&suite::sad()), 396)],
            }],
            geometries: None,
            space: SpaceSpec::Paper,
            limits: Limits::none(),
        }))
        .unwrap();
    match served {
        Response::Flowed(f) => {
            assert_eq!(f.chosen, report.chosen.name());
            assert_eq!(f.area_slices.to_bits(), report.area_slices.to_bits());
            assert_eq!(
                f.weighted_et_ns.to_bits(),
                report.weighted_et_ns().to_bits()
            );
            assert_eq!(f.refill_segments as usize, report.stats.refill_segments);
        }
        other => panic!("expected Flowed, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn per_request_limits_truncate_only_that_request() {
    let server = Server::spawn(ServeConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // A zero candidate budget truncates the sweep before any candidate:
    // no feasible point, flagged incomplete.
    let truncated = client
        .call(Request::Explore(ExploreRequest {
            kernels: vec![dfg(&suite::fdct())],
            weights: None,
            rows: 8,
            cols: 8,
            space: SpaceSpec::Paper,
            limits: Limits {
                deadline_ms: None,
                candidate_budget: Some(0),
            },
        }))
        .unwrap();
    match truncated {
        Response::Explored(e) => {
            assert!(!e.complete);
            assert_eq!(e.feasible, 0);
            assert_eq!(e.best, None);
        }
        other => panic!("expected truncated Explored, got {other:?}"),
    }

    // The next, unlimited request on the same connection is complete —
    // limits are per-request state, not session state.
    match client.call(explore_request()).unwrap() {
        Response::Explored(e) => {
            assert!(e.complete);
            assert!(e.feasible > 0);
        }
        other => panic!("expected Explored, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn malformed_lines_get_diagnostics_not_disconnects() {
    use std::io::{BufRead, BufReader, Write};

    let server = Server::spawn(ServeConfig::default()).unwrap();
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut send = |line: &str| -> String {
        raw.write_all(line.as_bytes()).unwrap();
        raw.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply
    };

    // Version mismatch names the supported version, salvages the id.
    let reply = send(r#"{"v": 1, "id": 41, "body": "Ping"}"#);
    assert!(reply.contains("\"id\":41"), "{reply}");
    assert!(reply.contains("version"), "{reply}");

    // Schema error names the missing field.
    let reply = send(r#"{"v": 2, "id": 42, "body": {"Map": {"rows": 8, "cols": 8}}}"#);
    assert!(reply.contains("kernel"), "{reply}");

    // Unparseable JSON is still answered (id 0), not dropped.
    let reply = send("][ definitely not json");
    assert!(reply.contains("\"id\":0"), "{reply}");
    assert!(reply.contains("Error"), "{reply}");

    // And the connection still serves real requests afterwards.
    let reply = send(r#"{"v": 2, "id": 43, "body": "Ping"}"#);
    assert!(reply.contains("Pong"), "{reply}");
    server.shutdown();
}

#[test]
fn panics_and_rejections_surface_as_structured_events() {
    use rsp_obs::{EventKind, OwnedValue, RingRecorder};
    use std::io::Write;

    let ring = std::sync::Arc::new(RingRecorder::new(1024));
    let server = Server::spawn(ServeConfig {
        recorder: ring.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // A malformed raw line → a structured `serve/reject` event naming
    // the reason, with the envelope id salvaged.
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"{\"v\": 2, \"id\": 77, \"body\": \"Quack\"}\n")
        .unwrap();
    let mut buf = [0u8; 1024];
    let _ = std::io::Read::read(&mut raw, &mut buf).unwrap();

    // A panicking request (mismatched weights) → a `serve/panic` event
    // carrying the payload, correlated by the request id.
    let poisoned = client
        .call(Request::Explore(ExploreRequest {
            kernels: vec![dfg(&suite::fdct())],
            weights: Some(vec![1.0, 2.0, 3.0]),
            rows: 8,
            cols: 8,
            space: SpaceSpec::Paper,
            limits: Limits::none(),
        }))
        .unwrap();
    assert!(matches!(poisoned, Response::Error(_)));

    let rejects = ring.named("serve", "reject");
    assert_eq!(rejects.len(), 1, "one structured rejection: {rejects:?}");
    assert_eq!(rejects[0].id, 77, "reject event salvages the wire id");
    assert_eq!(
        rejects[0].field("reason"),
        Some(&OwnedValue::Str("schema".into())),
        "rejection names its stage"
    );

    let panics = ring.named("serve", "panic");
    assert_eq!(panics.len(), 1, "one isolated panic: {panics:?}");
    assert!(
        matches!(panics[0].field("what"), Some(OwnedValue::Str(_))),
        "panic event carries the payload"
    );

    // The full lifecycle is visible: accepts, queue waits, and one
    // `request` span per answered line with its outcome.
    assert_eq!(ring.named("serve", "accept").len(), 2, "two connections");
    assert_eq!(ring.named("serve", "queue_wait").len(), 2);
    let requests = ring.named("serve", "request");
    assert_eq!(requests.len(), 2, "two answered lines: {requests:?}");
    let outcome_of = |id: u64| {
        requests
            .iter()
            .find(|e| e.id == id)
            .and_then(|e| e.field("outcome"))
    };
    assert_eq!(outcome_of(77), Some(&OwnedValue::Str("rejected".into())));
    assert!(requests
        .iter()
        .all(|e| matches!(e.kind, EventKind::Span { .. })));

    // The same failures are visible in the wire Stats snapshot.
    let stats = stats_of(&mut client);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.faulted, 1);
    assert_eq!(stats.latency_count, stats.wire_requests);
    server.shutdown();
}

#[test]
fn prewarmed_session_is_visible_through_the_wire() {
    // A host can pre-warm the shared session before serving: the first
    // wire request then starts warm (the serve benchmark's warm rows
    // lean on exactly this).
    let session = std::sync::Arc::new(Session::builder().build());
    let base = session.base(8, 8);
    session
        .explore(
            &base,
            &[suite::fdct(), suite::sad()],
            &[1.0, 1.0],
            &DesignSpace::paper(),
            rsp_core::ExploreControl::default(),
        )
        .unwrap();
    let warm: SessionStats = session.stats();

    let server = Server::with_session(ServeConfig::default(), session).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let before = stats_of(&mut client);
    assert_eq!(before.model_reports as usize, warm.model_reports);

    let r = client.call(explore_request()).unwrap();
    assert!(matches!(r, Response::Explored(_)));
    let after = stats_of(&mut client);
    assert_eq!(
        after.model_misses, before.model_misses,
        "a pre-warmed request must not synthesize anything new"
    );
    assert!(after.model_hits > before.model_hits);
    server.shutdown();
}
