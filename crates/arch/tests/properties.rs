//! Property tests for the architecture template invariants.

use proptest::prelude::*;
use rsp_arch::{
    ArrayGeometry, BaseArchitecture, BusSpec, FuKind, OpKind, PeDesign, PeId, RspArchitecture,
    SharedGroup, SharedResourceId, SharingPlan,
};

fn arb_geometry() -> impl Strategy<Value = ArrayGeometry> {
    (1usize..=12, 1usize..=12).prop_map(|(r, c)| ArrayGeometry::new(r, c))
}

fn arb_group() -> impl Strategy<Value = SharedGroup> {
    (0usize..=3, 0usize..=3, 1u8..=4).prop_filter_map("non-empty group", |(shr, shc, st)| {
        SharedGroup::new(FuKind::Multiplier, shr, shc, st).ok()
    })
}

proptest! {
    #[test]
    fn resource_count_matches_eq2(geom in arb_geometry(), g in arb_group()) {
        // eq. (2): total = n*shr + m*shc.
        let plan = SharingPlan::none().with_group(g).unwrap();
        let resources = plan.resources(geom);
        prop_assert_eq!(
            resources.len(),
            geom.rows() * g.per_row() + geom.cols() * g.per_col()
        );
        // No duplicates.
        let mut sorted = resources.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), resources.len());
    }

    #[test]
    fn reachability_is_consistent(geom in arb_geometry(), g in arb_group()) {
        let plan = SharingPlan::none().with_group(g).unwrap();
        let all = plan.resources(geom);
        for pe in geom.iter() {
            let reach = plan.reachable_from(pe, FuKind::Multiplier);
            // Exactly the switch fan-in alternatives.
            prop_assert_eq!(reach.len(), g.switch_fan_in());
            for r in &reach {
                prop_assert!(r.reaches(pe));
                prop_assert!(all.contains(r), "{r} not a physical resource");
            }
            // Everything that claims to reach this PE is in its list.
            for r in &all {
                prop_assert_eq!(r.reaches(pe), reach.contains(r));
            }
        }
    }

    #[test]
    fn every_resource_reaches_exactly_one_line(geom in arb_geometry(), g in arb_group()) {
        let plan = SharingPlan::none().with_group(g).unwrap();
        for r in plan.resources(geom) {
            let reached = geom.iter().filter(|pe| r.reaches(*pe)).count();
            let expected = match r {
                SharedResourceId::Row { .. } => geom.cols(),
                SharedResourceId::Col { .. } => geom.rows(),
            };
            prop_assert_eq!(reached, expected);
        }
    }

    #[test]
    fn op_latency_follows_group_stages(g in arb_group()) {
        let plan = SharingPlan::none().with_group(g).unwrap();
        let base = BaseArchitecture::new(
            ArrayGeometry::new(4, 4),
            PeDesign::full(),
            BusSpec::paper_default(),
            64,
        );
        let arch = RspArchitecture::new("p", base, plan).unwrap();
        prop_assert_eq!(arch.op_latency(OpKind::Mult), g.stages());
        // Non-shared kinds stay combinational.
        prop_assert_eq!(arch.op_latency(OpKind::Add), 1);
        prop_assert_eq!(arch.op_latency(OpKind::Shl), 1);
        // The multiplier leaves the PE but Mult stays supported.
        prop_assert!(!arch.effective_pe().has(FuKind::Multiplier));
        prop_assert!(arch.supports(PeId::new(0, 0), OpKind::Mult));
    }

    #[test]
    fn routing_relation_is_symmetric_and_reflexive(
        geom in arb_geometry(),
        a in (0usize..12, 0usize..12),
        b in (0usize..12, 0usize..12),
    ) {
        let base = BaseArchitecture::new(geom, PeDesign::full(), BusSpec::paper_default(), 16);
        let arch = RspArchitecture::new("p", base, SharingPlan::none()).unwrap();
        let pa = PeId::new(a.0 % geom.rows(), a.1 % geom.cols());
        let pb = PeId::new(b.0 % geom.rows(), b.1 % geom.cols());
        prop_assert!(arch.can_route(pa, pa));
        prop_assert_eq!(arch.can_route(pa, pb), arch.can_route(pb, pa));
    }

    #[test]
    fn shared_shifter_and_alu_also_work(
        kind_sel in 0usize..3,
        shr in 1usize..=2,
        st in 1u8..=2,
    ) {
        // Generic critical-resource support: any sharable kind can be the
        // shared one.
        let kind = [FuKind::Multiplier, FuKind::Alu, FuKind::Shifter][kind_sel];
        let plan = SharingPlan::none()
            .with_group(SharedGroup::new(kind, shr, 0, st).unwrap())
            .unwrap();
        let base = BaseArchitecture::new(
            ArrayGeometry::new(4, 4),
            PeDesign::full(),
            BusSpec::paper_default(),
            64,
        );
        let arch = RspArchitecture::new("p", base, plan).unwrap();
        prop_assert!(!arch.effective_pe().has(kind));
        // Ops of that kind are shared; everything else unaffected.
        for op in OpKind::ALL {
            if op.fu() == Some(kind) {
                prop_assert!(arch.op_is_shared(op));
                prop_assert_eq!(arch.op_latency(op), st);
            } else if op.fu().is_some() {
                prop_assert!(!arch.op_is_shared(op));
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_architecture(g in arb_group(), geom in arb_geometry()) {
        let plan = SharingPlan::none().with_group(g).unwrap();
        let base = BaseArchitecture::new(geom, PeDesign::full(), BusSpec::paper_default(), 32);
        let arch = RspArchitecture::new("rt", base, plan).unwrap();
        let json = serde_json::to_string(&arch).unwrap();
        let back: RspArchitecture = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, arch);
    }
}
