//! Error type for architecture construction and validation.

use crate::fu::FuKind;
use std::error::Error;
use std::fmt;

/// Errors raised while building or validating an RSP architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// The functional-unit kind cannot be extracted from PEs and shared.
    NotSharable(FuKind),
    /// A shared group declared zero resources per row and per column.
    EmptyGroup(FuKind),
    /// Invalid pipeline depth for the given kind.
    BadStages {
        /// The resource kind.
        kind: FuKind,
        /// The rejected depth.
        stages: u8,
    },
    /// Two groups (or a group and a local pipeline) declared for one kind.
    DuplicateGroup(FuKind),
    /// A shared kind is absent from the base PE design, so there is nothing
    /// to extract.
    MissingUnit(FuKind),
    /// A locally pipelined kind is absent from the (post-extraction) PE.
    MissingLocalUnit(FuKind),
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::NotSharable(k) => write!(f, "{k} cannot be shared between PEs"),
            ArchError::EmptyGroup(k) => {
                write!(
                    f,
                    "shared group for {k} has zero resources per row and column"
                )
            }
            ArchError::BadStages { kind, stages } => {
                write!(f, "invalid pipeline depth {stages} for {kind}")
            }
            ArchError::DuplicateGroup(k) => {
                write!(
                    f,
                    "{k} appears in more than one sharing/pipelining declaration"
                )
            }
            ArchError::MissingUnit(k) => {
                write!(f, "{k} is shared but absent from the base PE design")
            }
            ArchError::MissingLocalUnit(k) => {
                write!(f, "{k} is locally pipelined but absent from the PE design")
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_nonempty() {
        let errs = [
            ArchError::NotSharable(FuKind::Mux),
            ArchError::EmptyGroup(FuKind::Alu),
            ArchError::BadStages {
                kind: FuKind::Multiplier,
                stages: 0,
            },
            ArchError::DuplicateGroup(FuKind::Multiplier),
            ArchError::MissingUnit(FuKind::Shifter),
            ArchError::MissingLocalUnit(FuKind::Alu),
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(ArchError::NotSharable(FuKind::Mux));
    }
}
