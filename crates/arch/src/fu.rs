//! Functional units and the operations they execute.
//!
//! The paper's processing element (PE) contains an operand multiplexer, an
//! ALU, an array multiplier and shift logic (Table 1). Operations are
//! classified by the [`FuKind`] that executes them; the multiplier is the
//! *critical resource* of the evaluated domain (largest area **and** longest
//! delay), which makes it the candidate for sharing (RS) and pipelining
//! (RP).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A kind of functional unit inside (or shared between) processing elements.
///
/// # Examples
///
/// ```
/// use rsp_arch::FuKind;
///
/// assert!(FuKind::Multiplier.is_sharable());
/// assert_eq!(FuKind::Alu.to_string(), "ALU");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FuKind {
    /// Operand multiplexer selecting register/bus/immediate inputs.
    Mux,
    /// Arithmetic-logic unit: add, sub, abs, min/max, bitwise ops, move.
    Alu,
    /// 16×16 array multiplier producing a 32-bit product.
    Multiplier,
    /// Barrel shift logic.
    Shifter,
    /// Interface to the row read/write data buses (load/store issue logic).
    MemPort,
}

impl FuKind {
    /// All functional-unit kinds, in a stable order.
    pub const ALL: [FuKind; 5] = [
        FuKind::Mux,
        FuKind::Alu,
        FuKind::Multiplier,
        FuKind::Shifter,
        FuKind::MemPort,
    ];

    /// Whether the template allows extracting this unit from the PEs and
    /// sharing it through bus switches.
    ///
    /// The paper shares *functional* resources; the operand mux and the
    /// memory port are part of the PE/bus fabric and cannot be extracted.
    pub fn is_sharable(self) -> bool {
        matches!(self, FuKind::Alu | FuKind::Multiplier | FuKind::Shifter)
    }

    /// Whether the unit's datapath can be split by pipeline registers
    /// (resource pipelining, §3.2 of the paper).
    pub fn is_pipelinable(self) -> bool {
        matches!(self, FuKind::Alu | FuKind::Multiplier | FuKind::Shifter)
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuKind::Mux => "Multiplexer",
            FuKind::Alu => "ALU",
            FuKind::Multiplier => "Array multiplier",
            FuKind::Shifter => "Shift logic",
            FuKind::MemPort => "Memory port",
        };
        f.write_str(s)
    }
}

/// An operation that a PE can be configured to perform in one context cycle.
///
/// The set covers every operation used by the paper's kernels (Table 3:
/// `mult`, `add`, `sub`, `abs`, `shift`) plus the load/store operations
/// visible in Fig. 2 and the bitwise/min/max operations any Morphosys-class
/// ALU provides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// 16-bit addition.
    Add,
    /// 16-bit subtraction.
    Sub,
    /// Absolute value.
    Abs,
    /// Minimum of two operands.
    Min,
    /// Maximum of two operands.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Asr,
    /// 16×16 → 32-bit multiplication (the critical operation).
    Mult,
    /// Load a word from data memory over a row read bus.
    Load,
    /// Store a word to data memory over the row write bus.
    Store,
    /// Register move / route-through.
    Mov,
    /// Explicit idle cycle.
    Nop,
}

impl OpKind {
    /// All operation kinds, in a stable order.
    pub const ALL: [OpKind; 16] = [
        OpKind::Add,
        OpKind::Sub,
        OpKind::Abs,
        OpKind::Min,
        OpKind::Max,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Shl,
        OpKind::Shr,
        OpKind::Asr,
        OpKind::Mult,
        OpKind::Load,
        OpKind::Store,
        OpKind::Mov,
        OpKind::Nop,
    ];

    /// The functional unit that executes this operation, or `None` for
    /// [`OpKind::Nop`], which occupies nothing.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::{FuKind, OpKind};
    ///
    /// assert_eq!(OpKind::Mult.fu(), Some(FuKind::Multiplier));
    /// assert_eq!(OpKind::Nop.fu(), None);
    /// ```
    pub fn fu(self) -> Option<FuKind> {
        match self {
            OpKind::Add
            | OpKind::Sub
            | OpKind::Abs
            | OpKind::Min
            | OpKind::Max
            | OpKind::And
            | OpKind::Or
            | OpKind::Xor
            | OpKind::Mov => Some(FuKind::Alu),
            OpKind::Shl | OpKind::Shr | OpKind::Asr => Some(FuKind::Shifter),
            OpKind::Mult => Some(FuKind::Multiplier),
            OpKind::Load | OpKind::Store => Some(FuKind::MemPort),
            OpKind::Nop => None,
        }
    }

    /// Number of value operands the operation consumes.
    ///
    /// `Load` consumes none: its address comes from the configuration
    /// context (base + iteration-dependent offset), matching the `Ld`
    /// operations of the paper's Fig. 2 where operands arrive over the row
    /// read buses.
    pub fn arity(self) -> usize {
        match self {
            OpKind::Abs | OpKind::Mov | OpKind::Store => 1,
            OpKind::Nop | OpKind::Load => 0,
            _ => 2,
        }
    }

    /// Whether this is a memory operation (uses a row data bus).
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }

    /// Short mnemonic used in schedule printouts (Fig. 2/6 style).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Abs => "abs",
            OpKind::Min => "min",
            OpKind::Max => "max",
            OpKind::And => "&",
            OpKind::Or => "|",
            OpKind::Xor => "^",
            OpKind::Shl => "<<",
            OpKind::Shr => ">>",
            OpKind::Asr => ">>a",
            OpKind::Mult => "*",
            OpKind::Load => "Ld",
            OpKind::Store => "St",
            OpKind::Mov => "mov",
            OpKind::Nop => ".",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Abs => "abs",
            OpKind::Min => "min",
            OpKind::Max => "max",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::Asr => "asr",
            OpKind::Mult => "mult",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Mov => "mov",
            OpKind::Nop => "nop",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_non_nop_op_has_a_fu() {
        for op in OpKind::ALL {
            if op == OpKind::Nop {
                assert_eq!(op.fu(), None);
            } else {
                assert!(op.fu().is_some(), "{op} must map to a FU");
            }
        }
    }

    #[test]
    fn mult_is_the_multiplier_op() {
        let mult_ops: Vec<_> = OpKind::ALL
            .iter()
            .filter(|o| o.fu() == Some(FuKind::Multiplier))
            .collect();
        assert_eq!(mult_ops, vec![&OpKind::Mult]);
    }

    #[test]
    fn shift_ops_use_shifter() {
        for op in [OpKind::Shl, OpKind::Shr, OpKind::Asr] {
            assert_eq!(op.fu(), Some(FuKind::Shifter));
        }
    }

    #[test]
    fn mem_ops_flagged() {
        assert!(OpKind::Load.is_mem());
        assert!(OpKind::Store.is_mem());
        assert!(!OpKind::Mult.is_mem());
    }

    #[test]
    fn sharable_units_are_functional() {
        assert!(FuKind::Multiplier.is_sharable());
        assert!(FuKind::Alu.is_sharable());
        assert!(FuKind::Shifter.is_sharable());
        assert!(!FuKind::Mux.is_sharable());
        assert!(!FuKind::MemPort.is_sharable());
    }

    #[test]
    fn arity_matches_semantics() {
        assert_eq!(OpKind::Add.arity(), 2);
        assert_eq!(OpKind::Abs.arity(), 1);
        assert_eq!(OpKind::Nop.arity(), 0);
        assert_eq!(OpKind::Load.arity(), 0);
        assert_eq!(OpKind::Store.arity(), 1);
    }

    #[test]
    fn display_and_mnemonic_nonempty() {
        for op in OpKind::ALL {
            assert!(!op.to_string().is_empty());
            assert!(!op.mnemonic().is_empty());
        }
        for fu in FuKind::ALL {
            assert!(!fu.to_string().is_empty());
        }
    }

    #[test]
    fn serde_round_trip() {
        for op in OpKind::ALL {
            let s = serde_json::to_string(&op).unwrap();
            let back: OpKind = serde_json::from_str(&s).unwrap();
            assert_eq!(op, back);
        }
    }
}
