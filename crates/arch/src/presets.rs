//! Preset architectures from the paper.
//!
//! * [`base_8x8`] — the Morphosys-like base architecture of §5.1: 8×8 mesh
//!   of full PEs, 16-bit datapath, two read / one write bus per row, a
//!   configuration cache per PE.
//! * [`rs(k)`](rs) / [`rsp(k)`](rsp) — the four sharing configurations of
//!   Fig. 8, with combinational (RS) or 2-stage pipelined (RSP)
//!   multipliers:
//!
//!   | # | per row (`shr`) | per column (`shc`) |
//!   |---|-----------------|--------------------|
//!   | 1 | 1 | 0 |
//!   | 2 | 2 | 0 |
//!   | 3 | 2 | 1 |
//!   | 4 | 2 | 2 |
//!
//! * [`fig1_4x4`] — the 4×4 illustration array of Fig. 1 used by the
//!   matrix-multiplication walkthrough (Figs. 2 and 6).

use crate::bus::BusSpec;
use crate::fu::FuKind;
use crate::geometry::ArrayGeometry;
use crate::pe::PeDesign;
use crate::sharing::{SharedGroup, SharingPlan};
use crate::template::{BaseArchitecture, RspArchitecture};

/// Configuration-cache depth used by all presets. Generous enough for every
/// kernel in the paper's suite (longest rearranged schedule < 128).
pub const PRESET_CACHE_DEPTH: usize = 256;

/// The `(shr, shc)` pairs of Fig. 8's four sharing configurations,
/// indexed by `config - 1`.
pub const FIG8_CONFIGS: [(usize, usize); 4] = [(1, 0), (2, 0), (2, 1), (2, 2)];

/// The paper's base architecture (§5.1): 8×8 mesh, full 16-bit PEs.
///
/// # Examples
///
/// ```
/// use rsp_arch::presets;
/// let base = presets::base_8x8();
/// assert!(base.is_base());
/// assert_eq!(base.geometry().pe_count(), 64);
/// ```
pub fn base_8x8() -> RspArchitecture {
    RspArchitecture::new("Base", base_array(8, 8), SharingPlan::none())
        .expect("base preset is valid")
}

/// The 4×4 illustration array of Fig. 1 (two read buses, one write bus).
pub fn fig1_4x4() -> RspArchitecture {
    RspArchitecture::new("Base-4x4", base_array(4, 4), SharingPlan::none())
        .expect("4x4 preset is valid")
}

/// RS architecture `config` (1..=4) of Fig. 8: multipliers shared,
/// combinational (1 stage).
///
/// # Panics
///
/// Panics if `config` is not in `1..=4`.
///
/// # Examples
///
/// ```
/// use rsp_arch::{presets, FuKind};
/// let rs1 = presets::rs(1);
/// // One multiplier shared by the 8 PEs of each row: 8 total.
/// assert_eq!(rs1.shared_resources().len(), 8);
/// ```
pub fn rs(config: usize) -> RspArchitecture {
    shared_preset(config, 1, 8, 8)
}

/// RSP architecture `config` (1..=4) of Fig. 8: multipliers shared *and*
/// pipelined into two stages.
///
/// # Panics
///
/// Panics if `config` is not in `1..=4`.
pub fn rsp(config: usize) -> RspArchitecture {
    shared_preset(config, 2, 8, 8)
}

/// Convenience aliases matching the paper's table rows.
pub fn rs1() -> RspArchitecture {
    rs(1)
}
/// RS architecture #2 (two multipliers per row).
pub fn rs2() -> RspArchitecture {
    rs(2)
}
/// RS architecture #3 (two per row, one per column).
pub fn rs3() -> RspArchitecture {
    rs(3)
}
/// RS architecture #4 (two per row, two per column).
pub fn rs4() -> RspArchitecture {
    rs(4)
}
/// RSP architecture #1 (one 2-stage multiplier per row).
pub fn rsp1() -> RspArchitecture {
    rsp(1)
}
/// RSP architecture #2 (two 2-stage multipliers per row).
pub fn rsp2() -> RspArchitecture {
    rsp(2)
}
/// RSP architecture #3 (two per row, one per column, 2-stage).
pub fn rsp3() -> RspArchitecture {
    rsp(3)
}
/// RSP architecture #4 (two per row, two per column, 2-stage).
pub fn rsp4() -> RspArchitecture {
    rsp(4)
}

/// All nine architectures of Tables 2/4/5 in row order:
/// Base, RS#1..4, RSP#1..4.
pub fn table_architectures() -> Vec<RspArchitecture> {
    let mut v = vec![base_8x8()];
    for k in 1..=4 {
        v.push(rs(k));
    }
    for k in 1..=4 {
        v.push(rsp(k));
    }
    v
}

/// A generic shared-multiplier architecture on an arbitrary geometry —
/// used by ablation sweeps.
///
/// # Panics
///
/// Panics if `shr == 0 && shc == 0` or `stages == 0` (delegates to
/// [`SharedGroup::new`] validation).
pub fn shared_multiplier(
    name: impl Into<String>,
    rows: usize,
    cols: usize,
    shr: usize,
    shc: usize,
    stages: u8,
) -> RspArchitecture {
    let plan = SharingPlan::none()
        .with_group(
            SharedGroup::new(FuKind::Multiplier, shr, shc, stages)
                .expect("invalid shared-multiplier parameters"),
        )
        .expect("single group cannot duplicate");
    RspArchitecture::new(name, base_array(rows, cols), plan)
        .expect("full PE always contains a multiplier")
}

/// A pure-RP architecture: multiplier kept in every PE but pipelined.
pub fn rp_only(stages: u8) -> RspArchitecture {
    let plan = SharingPlan::none()
        .with_local_pipeline(FuKind::Multiplier, stages)
        .expect("valid local pipeline");
    RspArchitecture::new(format!("RP-only({stages})"), base_array(8, 8), plan)
        .expect("valid RP-only preset")
}

fn base_array(rows: usize, cols: usize) -> BaseArchitecture {
    BaseArchitecture::new(
        ArrayGeometry::new(rows, cols),
        PeDesign::full(),
        BusSpec::paper_default(),
        PRESET_CACHE_DEPTH,
    )
}

fn shared_preset(config: usize, stages: u8, rows: usize, cols: usize) -> RspArchitecture {
    assert!(
        (1..=4).contains(&config),
        "Fig. 8 defines configurations 1..=4, got {config}"
    );
    let (shr, shc) = FIG8_CONFIGS[config - 1];
    let prefix = if stages > 1 { "RSP" } else { "RS" };
    shared_multiplier(format!("{prefix}#{config}"), rows, cols, shr, shc, stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_resource_totals() {
        // Totals on 8x8: #1 -> 8, #2 -> 16, #3 -> 24, #4 -> 32.
        let expect = [8usize, 16, 24, 32];
        for k in 1..=4 {
            assert_eq!(rs(k).shared_resources().len(), expect[k - 1], "RS#{k}");
            assert_eq!(rsp(k).shared_resources().len(), expect[k - 1], "RSP#{k}");
        }
    }

    #[test]
    fn rs_is_combinational_rsp_is_two_stage() {
        for k in 1..=4 {
            assert_eq!(rs(k).op_latency(crate::OpKind::Mult), 1);
            assert_eq!(rsp(k).op_latency(crate::OpKind::Mult), 2);
        }
    }

    #[test]
    fn table_architectures_order() {
        let archs = table_architectures();
        let names: Vec<_> = archs.iter().map(|a| a.name().to_string()).collect();
        assert_eq!(
            names,
            vec!["Base", "RS#1", "RS#2", "RS#3", "RS#4", "RSP#1", "RSP#2", "RSP#3", "RSP#4"]
        );
    }

    #[test]
    #[should_panic(expected = "configurations 1..=4")]
    fn out_of_range_config_panics() {
        let _ = rs(5);
    }

    #[test]
    fn rp_only_has_no_switch() {
        let arch = rp_only(2);
        assert!(!arch.plan().needs_switch());
        assert_eq!(arch.op_latency(crate::OpKind::Mult), 2);
        assert!(arch.effective_pe().has(FuKind::Multiplier));
    }

    #[test]
    fn fig1_is_4x4() {
        let a = fig1_4x4();
        assert_eq!(a.geometry().rows(), 4);
        assert_eq!(a.geometry().cols(), 4);
        assert_eq!(a.base().buses().read_buses(), 2);
    }
}
