//! The instantiated RSP architecture: base array + sharing plan, validated.

use crate::bus::BusSpec;
#[cfg(test)]
use crate::fu::FuKind;
use crate::fu::OpKind;
use crate::geometry::{ArrayGeometry, PeId};
use crate::pe::PeDesign;
use crate::sharing::{SharedResourceId, SharingPlan};
use crate::ArchError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The base reconfigurable array before any RSP refinement: geometry,
/// homogeneous PE design, row buses, and per-PE configuration-cache depth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaseArchitecture {
    geometry: ArrayGeometry,
    pe: PeDesign,
    buses: BusSpec,
    /// Contexts each PE's private configuration cache can hold. Loop
    /// pipelining (unlike Morphosys' SIMD broadcast) needs a cache per PE
    /// (§5.1); its depth bounds kernel schedule length.
    config_cache_depth: usize,
}

impl BaseArchitecture {
    /// Creates a base architecture.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::{ArrayGeometry, BaseArchitecture, BusSpec, PeDesign};
    /// let base = BaseArchitecture::new(
    ///     ArrayGeometry::new(8, 8),
    ///     PeDesign::full(),
    ///     BusSpec::paper_default(),
    ///     128,
    /// );
    /// assert_eq!(base.geometry().pe_count(), 64);
    /// ```
    pub fn new(
        geometry: ArrayGeometry,
        pe: PeDesign,
        buses: BusSpec,
        config_cache_depth: usize,
    ) -> Self {
        assert!(
            config_cache_depth > 0,
            "config cache must hold >= 1 context"
        );
        Self {
            geometry,
            pe,
            buses,
            config_cache_depth,
        }
    }

    /// Array geometry.
    pub fn geometry(&self) -> ArrayGeometry {
        self.geometry
    }

    /// The homogeneous PE design.
    pub fn pe(&self) -> &PeDesign {
        &self.pe
    }

    /// Row bus provisioning.
    pub fn buses(&self) -> BusSpec {
        self.buses
    }

    /// Depth of each PE's configuration cache (contexts).
    pub fn config_cache_depth(&self) -> usize {
        self.config_cache_depth
    }
}

/// A validated RSP architecture instance: the base array refined by a
/// [`SharingPlan`].
///
/// Construction checks that every shared kind exists in the base PE (there
/// must be something to extract) and that locally pipelined kinds survive
/// extraction. The *effective* PE (`Sh_PE` of eq. (2)) is the base PE with
/// all shared kinds removed.
///
/// The base array is held behind an [`Arc`] so that enumerating thousands
/// of candidate plans over one base (design-space exploration) shares a
/// single allocation instead of deep-cloning the array per candidate;
/// `clone()` on an architecture is likewise cheap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RspArchitecture {
    base: Arc<BaseArchitecture>,
    plan: SharingPlan,
    effective_pe: PeDesign,
    name: String,
}

impl RspArchitecture {
    /// Builds and validates an architecture.
    ///
    /// # Errors
    ///
    /// * [`ArchError::MissingUnit`] — a shared kind is not in the base PE.
    /// * [`ArchError::MissingLocalUnit`] — a locally pipelined kind is not
    ///   in the effective PE.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::presets;
    /// let arch = presets::rsp2();
    /// assert!(arch.plan().is_shared(rsp_arch::FuKind::Multiplier));
    /// ```
    ///
    /// Accepts either an owned [`BaseArchitecture`] or an
    /// `Arc<BaseArchitecture>`; pass a cloned `Arc` to share one base
    /// across many candidate architectures without copying it:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use rsp_arch::{presets, RspArchitecture, SharingPlan};
    ///
    /// let base = Arc::new(presets::base_8x8().base().clone());
    /// let a = RspArchitecture::new("a", Arc::clone(&base), SharingPlan::none())?;
    /// let b = RspArchitecture::new("b", Arc::clone(&base), SharingPlan::none())?;
    /// assert!(Arc::ptr_eq(a.base_arc(), b.base_arc()));
    /// # Ok::<(), rsp_arch::ArchError>(())
    /// ```
    pub fn new(
        name: impl Into<String>,
        base: impl Into<Arc<BaseArchitecture>>,
        plan: SharingPlan,
    ) -> Result<Self, ArchError> {
        let base = base.into();
        let mut effective_pe = base.pe().clone();
        for g in plan.groups() {
            if !base.pe().has(g.kind()) {
                return Err(ArchError::MissingUnit(g.kind()));
            }
            effective_pe = effective_pe.without(g.kind());
        }
        for (kind, _) in plan.local_pipelines() {
            if !effective_pe.has(kind) {
                return Err(ArchError::MissingLocalUnit(kind));
            }
        }
        Ok(Self {
            base,
            plan,
            effective_pe,
            name: name.into(),
        })
    }

    /// A human-readable architecture name (e.g. `"RSP#2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base array this architecture refines.
    pub fn base(&self) -> &BaseArchitecture {
        &self.base
    }

    /// The shared handle to the base array (cheap to clone into further
    /// candidate architectures).
    pub fn base_arc(&self) -> &Arc<BaseArchitecture> {
        &self.base
    }

    /// The sharing/pipelining plan.
    pub fn plan(&self) -> &SharingPlan {
        &self.plan
    }

    /// Array geometry (shortcut for `base().geometry()`).
    pub fn geometry(&self) -> ArrayGeometry {
        self.base.geometry()
    }

    /// The PE after extraction of shared units (`Sh_PE` of eq. (2)).
    /// Equals the base PE when nothing is shared.
    pub fn effective_pe(&self) -> &PeDesign {
        &self.effective_pe
    }

    /// Whether this is the unrefined base architecture.
    pub fn is_base(&self) -> bool {
        self.plan.is_base()
    }

    /// Latency in cycles of `op` on this architecture (pipeline depth of
    /// the unit that executes it; 1 for combinational units and `Nop`).
    pub fn op_latency(&self, op: OpKind) -> u8 {
        match op.fu() {
            None => 1,
            Some(fu) => self.plan.latency_of(fu),
        }
    }

    /// Whether `op` executes on a shared (extracted) resource.
    pub fn op_is_shared(&self, op: OpKind) -> bool {
        op.fu().is_some_and(|fu| self.plan.is_shared(fu))
    }

    /// Whether `pe` can execute `op` at all (locally or via a shared bank).
    pub fn supports(&self, pe: PeId, op: OpKind) -> bool {
        debug_assert!(self.geometry().contains(pe));
        if self.effective_pe.supports_locally(op) {
            return true;
        }
        op.fu()
            .is_some_and(|fu| !self.plan.reachable_from(pe, fu).is_empty())
    }

    /// The shared resources `pe` can route `op` to (empty when `op` runs
    /// locally).
    pub fn candidates(&self, pe: PeId, op: OpKind) -> Vec<SharedResourceId> {
        match op.fu() {
            Some(fu) if self.plan.is_shared(fu) => self.plan.reachable_from(pe, fu),
            _ => Vec::new(),
        }
    }

    /// All physical shared resources of the array.
    pub fn shared_resources(&self) -> Vec<SharedResourceId> {
        self.plan.resources(self.geometry())
    }

    /// Whether a value produced on `from` can reach `to` within one
    /// cycle: through the local register file (same PE) or over the
    /// row/column interconnect the base architecture adds "to reduce
    /// data arrangement cycles" (§5.1).
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::{presets, PeId};
    /// let arch = presets::base_8x8();
    /// assert!(arch.can_route(PeId::new(2, 3), PeId::new(2, 7))); // same row
    /// assert!(arch.can_route(PeId::new(1, 4), PeId::new(6, 4))); // same column
    /// assert!(!arch.can_route(PeId::new(0, 0), PeId::new(1, 1))); // diagonal
    /// ```
    pub fn can_route(&self, from: PeId, to: PeId) -> bool {
        debug_assert!(self.geometry().contains(from) && self.geometry().contains(to));
        from == to || from.row == to.row || from.col == to.col
    }
}

impl fmt::Display for RspArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} array, {}, {}]",
            self.name,
            self.geometry(),
            self.base.buses(),
            self.plan
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing::SharedGroup;

    fn base_4x4() -> BaseArchitecture {
        BaseArchitecture::new(
            ArrayGeometry::new(4, 4),
            PeDesign::full(),
            BusSpec::paper_default(),
            32,
        )
    }

    #[test]
    fn base_architecture_supports_everything_locally() {
        let arch = RspArchitecture::new("base", base_4x4(), SharingPlan::none()).unwrap();
        assert!(arch.is_base());
        for op in OpKind::ALL {
            assert!(arch.supports(PeId::new(0, 0), op));
            assert_eq!(arch.op_latency(op), 1);
            assert!(!arch.op_is_shared(op));
        }
        assert!(arch.candidates(PeId::new(0, 0), OpKind::Mult).is_empty());
    }

    #[test]
    fn sharing_extracts_multiplier() {
        let plan = SharingPlan::none()
            .with_group(SharedGroup::new(FuKind::Multiplier, 2, 0, 2).unwrap())
            .unwrap();
        let arch = RspArchitecture::new("rsp2-like", base_4x4(), plan).unwrap();
        assert!(!arch.effective_pe().has(FuKind::Multiplier));
        assert!(arch.effective_pe().has(FuKind::Alu));
        assert!(arch.supports(PeId::new(1, 1), OpKind::Mult));
        assert_eq!(arch.op_latency(OpKind::Mult), 2);
        assert!(arch.op_is_shared(OpKind::Mult));
        assert_eq!(arch.candidates(PeId::new(1, 1), OpKind::Mult).len(), 2);
        assert_eq!(arch.shared_resources().len(), 8); // 4 rows * 2
    }

    #[test]
    fn sharing_absent_unit_rejected() {
        let pe = PeDesign::with_units([FuKind::Alu], 16); // no multiplier
        let base =
            BaseArchitecture::new(ArrayGeometry::new(2, 2), pe, BusSpec::paper_default(), 16);
        let plan = SharingPlan::none()
            .with_group(SharedGroup::new(FuKind::Multiplier, 1, 0, 1).unwrap())
            .unwrap();
        assert_eq!(
            RspArchitecture::new("bad", base, plan),
            Err(ArchError::MissingUnit(FuKind::Multiplier))
        );
    }

    #[test]
    fn local_pipeline_of_extracted_unit_rejected() {
        // Share the multiplier *and* try to locally pipeline the shifter on
        // a PE that lacks one.
        let pe = PeDesign::with_units([FuKind::Alu, FuKind::Multiplier], 16);
        let base =
            BaseArchitecture::new(ArrayGeometry::new(2, 2), pe, BusSpec::paper_default(), 16);
        let plan = SharingPlan::none()
            .with_local_pipeline(FuKind::Shifter, 2)
            .unwrap();
        assert_eq!(
            RspArchitecture::new("bad", base, plan),
            Err(ArchError::MissingLocalUnit(FuKind::Shifter))
        );
    }

    #[test]
    fn display_includes_name_and_geometry() {
        let arch = RspArchitecture::new("base", base_4x4(), SharingPlan::none()).unwrap();
        let s = arch.to_string();
        assert!(s.contains("base"));
        assert!(s.contains("4x4"));
    }

    #[test]
    #[should_panic(expected = "config cache")]
    fn zero_cache_depth_rejected() {
        let _ = BaseArchitecture::new(
            ArrayGeometry::new(2, 2),
            PeDesign::full(),
            BusSpec::paper_default(),
            0,
        );
    }
}
