//! Rectangular array geometry: PE coordinates, row/column iteration.
//!
//! The RSP template assumes "any rectangular pipelining structure" (§4), so
//! geometry is an `rows × cols` grid; the paper's experiments use 8×8 and
//! the illustrating example (Fig. 1) uses 4×4.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coordinate of one processing element in the array.
///
/// Rows and columns are zero-based; the paper's Fig. 2 column numbering
/// (`col#1`..`col#4`) maps to `col` 0..3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeId {
    /// Row index, `0..rows`.
    pub row: usize,
    /// Column index, `0..cols`.
    pub col: usize,
}

impl PeId {
    /// Creates a PE coordinate.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::PeId;
    /// let pe = PeId::new(2, 5);
    /// assert_eq!((pe.row, pe.col), (2, 5));
    /// ```
    pub fn new(row: usize, col: usize) -> Self {
        Self { row, col }
    }
}

impl fmt::Display for PeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PE[{},{}]", self.row, self.col)
    }
}

/// Dimensions of the reconfigurable array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayGeometry {
    rows: usize,
    cols: usize,
}

impl ArrayGeometry {
    /// Creates an `rows × cols` geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; the template requires a
    /// non-empty rectangle.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::ArrayGeometry;
    /// let g = ArrayGeometry::new(8, 8);
    /// assert_eq!(g.pe_count(), 64);
    /// ```
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be non-zero");
        Self { rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of PEs (`n × m` in eq. (2)).
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether `pe` lies inside this geometry.
    pub fn contains(&self, pe: PeId) -> bool {
        pe.row < self.rows && pe.col < self.cols
    }

    /// Iterates over all PEs in row-major order.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::ArrayGeometry;
    /// let g = ArrayGeometry::new(2, 3);
    /// assert_eq!(g.iter().count(), 6);
    /// ```
    pub fn iter(&self) -> impl Iterator<Item = PeId> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |r| (0..cols).map(move |c| PeId::new(r, c)))
    }

    /// Iterates over the PEs of one row.
    pub fn row_pes(&self, row: usize) -> impl Iterator<Item = PeId> + '_ {
        debug_assert!(row < self.rows);
        (0..self.cols).map(move |c| PeId::new(row, c))
    }

    /// Iterates over the PEs of one column.
    pub fn col_pes(&self, col: usize) -> impl Iterator<Item = PeId> + '_ {
        debug_assert!(col < self.cols);
        (0..self.rows).map(move |r| PeId::new(r, col))
    }

    /// Linear index of a PE in row-major order.
    pub fn linear(&self, pe: PeId) -> usize {
        debug_assert!(self.contains(pe));
        pe.row * self.cols + pe.col
    }

    /// Inverse of [`ArrayGeometry::linear`].
    pub fn from_linear(&self, idx: usize) -> PeId {
        debug_assert!(idx < self.pe_count());
        PeId::new(idx / self.cols, idx % self.cols)
    }
}

impl fmt::Display for ArrayGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_counts() {
        let g = ArrayGeometry::new(8, 8);
        assert_eq!(g.rows(), 8);
        assert_eq!(g.cols(), 8);
        assert_eq!(g.pe_count(), 64);
        assert_eq!(g.iter().count(), 64);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rows_rejected() {
        let _ = ArrayGeometry::new(0, 4);
    }

    #[test]
    fn contains_boundaries() {
        let g = ArrayGeometry::new(4, 4);
        assert!(g.contains(PeId::new(3, 3)));
        assert!(!g.contains(PeId::new(4, 0)));
        assert!(!g.contains(PeId::new(0, 4)));
    }

    #[test]
    fn linear_round_trip() {
        let g = ArrayGeometry::new(5, 7);
        for pe in g.iter() {
            assert_eq!(g.from_linear(g.linear(pe)), pe);
        }
    }

    #[test]
    fn row_and_col_iterators() {
        let g = ArrayGeometry::new(3, 4);
        assert_eq!(g.row_pes(1).count(), 4);
        assert!(g.row_pes(1).all(|pe| pe.row == 1));
        assert_eq!(g.col_pes(2).count(), 3);
        assert!(g.col_pes(2).all(|pe| pe.col == 2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ArrayGeometry::new(8, 8).to_string(), "8x8");
        assert_eq!(PeId::new(1, 2).to_string(), "PE[1,2]");
    }

    #[test]
    fn row_major_order() {
        let g = ArrayGeometry::new(2, 2);
        let pes: Vec<_> = g.iter().collect();
        assert_eq!(
            pes,
            vec![
                PeId::new(0, 0),
                PeId::new(0, 1),
                PeId::new(1, 0),
                PeId::new(1, 1)
            ]
        );
    }
}
