//! # rsp-arch — CGRA architecture template model
//!
//! Structural model of the coarse-grained reconfigurable array template
//! from *"Resource Sharing and Pipelining in Coarse-Grained Reconfigurable
//! Architecture for Domain-Specific Optimization"* (Kim et al., DATE 2005).
//!
//! The template is a rectangular mesh of 16-bit processing elements (PEs)
//! with per-row data buses and a configuration cache per PE (loop-pipelined
//! execution, not SIMD). Its distinguishing features are:
//!
//! * **Resource sharing (RS)** — area-critical functional units (the array
//!   multiplier in the paper's domain) are extracted from the PEs and
//!   placed as banks along rows and/or columns; each PE reaches them
//!   through a private bus switch ([`SharingPlan`], [`SharedGroup`]).
//! * **Resource pipelining (RP)** — delay-critical units are split by
//!   pipeline registers so the array clock shortens while the operation
//!   takes several cycles ([`SharedGroup::stages`],
//!   [`SharingPlan::with_local_pipeline`]).
//!
//! # Examples
//!
//! Build the paper's RSP#2 architecture (two 2-stage multipliers shared by
//! each row of an 8×8 array) from scratch:
//!
//! ```
//! use rsp_arch::{
//!     ArrayGeometry, BaseArchitecture, BusSpec, FuKind, PeDesign, RspArchitecture,
//!     SharedGroup, SharingPlan,
//! };
//!
//! # fn main() -> Result<(), rsp_arch::ArchError> {
//! let base = BaseArchitecture::new(
//!     ArrayGeometry::new(8, 8),
//!     PeDesign::full(),
//!     BusSpec::paper_default(),
//!     256,
//! );
//! let plan = SharingPlan::none()
//!     .with_group(SharedGroup::new(FuKind::Multiplier, 2, 0, 2)?)?;
//! let arch = RspArchitecture::new("RSP#2", base, plan)?;
//!
//! assert_eq!(arch.shared_resources().len(), 16);
//! assert_eq!(arch.op_latency(rsp_arch::OpKind::Mult), 2);
//! # Ok(())
//! # }
//! ```
//!
//! Or use the [`presets`] that mirror the paper's Fig. 8 configurations:
//!
//! ```
//! let rsp2 = rsp_arch::presets::rsp2();
//! assert_eq!(rsp2.name(), "RSP#2");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bus;
mod error;
mod fu;
mod geometry;
mod pe;
pub mod presets;
mod sharing;
mod template;

pub use bus::BusSpec;
pub use error::ArchError;
pub use fu::{FuKind, OpKind};
pub use geometry::{ArrayGeometry, PeId};
pub use pe::PeDesign;
pub use sharing::{SharedGroup, SharedResourceId, SharingPlan, MAX_STAGES};
pub use template::{BaseArchitecture, RspArchitecture};
