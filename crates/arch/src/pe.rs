//! Processing-element design: which functional units a PE contains.
//!
//! In the base template every PE is homogeneous and contains the full unit
//! inventory (mux, ALU, multiplier, shifter, memory port). Resource sharing
//! *extracts* the critical units from the PE — the remaining "shared PE"
//! (`Sh_PE` in eq. (2)) reaches extracted units through its bus switch.

use crate::fu::{FuKind, OpKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The functional-unit inventory of one processing element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeDesign {
    units: BTreeSet<FuKind>,
    /// Datapath width in bits (the paper extends Morphosys' bus to 16 bit).
    width_bits: u32,
}

impl PeDesign {
    /// The full Morphosys-like PE of the paper's base architecture:
    /// mux + ALU + array multiplier + shift logic + memory port, 16-bit.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::{FuKind, PeDesign};
    /// let pe = PeDesign::full();
    /// assert!(pe.has(FuKind::Multiplier));
    /// assert_eq!(pe.width_bits(), 16);
    /// ```
    pub fn full() -> Self {
        Self {
            units: FuKind::ALL.iter().copied().collect(),
            width_bits: 16,
        }
    }

    /// A PE with an explicit unit set.
    ///
    /// The mux and memory port are always present (they are part of the PE
    /// fabric, not optional resources) and are added if missing.
    pub fn with_units<I: IntoIterator<Item = FuKind>>(units: I, width_bits: u32) -> Self {
        let mut set: BTreeSet<FuKind> = units.into_iter().collect();
        set.insert(FuKind::Mux);
        set.insert(FuKind::MemPort);
        Self {
            units: set,
            width_bits,
        }
    }

    /// Datapath width in bits.
    pub fn width_bits(&self) -> u32 {
        self.width_bits
    }

    /// Whether the PE contains the given unit locally.
    pub fn has(&self, fu: FuKind) -> bool {
        self.units.contains(&fu)
    }

    /// Iterates over the units present in this PE.
    pub fn units(&self) -> impl Iterator<Item = FuKind> + '_ {
        self.units.iter().copied()
    }

    /// Returns a copy of this design with `fu` extracted (for sharing).
    ///
    /// Extracting a unit that is absent is a no-op; extracting the mux or
    /// memory port is not possible and the request is ignored (they are not
    /// [`FuKind::is_sharable`]).
    #[must_use]
    pub fn without(&self, fu: FuKind) -> Self {
        let mut d = self.clone();
        if fu.is_sharable() {
            d.units.remove(&fu);
        }
        d
    }

    /// Whether an operation can execute *locally* on this PE (ignoring any
    /// shared banks it might additionally reach).
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::{FuKind, OpKind, PeDesign};
    /// let shared_pe = PeDesign::full().without(FuKind::Multiplier);
    /// assert!(!shared_pe.supports_locally(OpKind::Mult));
    /// assert!(shared_pe.supports_locally(OpKind::Add));
    /// ```
    pub fn supports_locally(&self, op: OpKind) -> bool {
        match op.fu() {
            None => true, // Nop needs nothing
            Some(fu) => self.has(fu),
        }
    }
}

impl Default for PeDesign {
    fn default() -> Self {
        Self::full()
    }
}

impl fmt::Display for PeDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self.units.iter().map(|u| u.to_string()).collect();
        write!(f, "PE({}-bit: {})", self.width_bits, names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pe_has_everything() {
        let pe = PeDesign::full();
        for fu in FuKind::ALL {
            assert!(pe.has(fu), "{fu} missing from full PE");
        }
        for op in OpKind::ALL {
            assert!(pe.supports_locally(op));
        }
    }

    #[test]
    fn extraction_removes_multiplier_only() {
        let pe = PeDesign::full().without(FuKind::Multiplier);
        assert!(!pe.has(FuKind::Multiplier));
        assert!(pe.has(FuKind::Alu));
        assert!(!pe.supports_locally(OpKind::Mult));
        assert!(pe.supports_locally(OpKind::Shl));
    }

    #[test]
    fn fabric_units_cannot_be_extracted() {
        let pe = PeDesign::full()
            .without(FuKind::Mux)
            .without(FuKind::MemPort);
        assert!(pe.has(FuKind::Mux));
        assert!(pe.has(FuKind::MemPort));
    }

    #[test]
    fn with_units_always_adds_fabric() {
        let pe = PeDesign::with_units([FuKind::Alu], 16);
        assert!(pe.has(FuKind::Mux));
        assert!(pe.has(FuKind::MemPort));
        assert!(pe.has(FuKind::Alu));
        assert!(!pe.has(FuKind::Multiplier));
    }

    #[test]
    fn default_is_full() {
        assert_eq!(PeDesign::default(), PeDesign::full());
    }

    #[test]
    fn display_mentions_width() {
        assert!(PeDesign::full().to_string().contains("16-bit"));
    }
}
