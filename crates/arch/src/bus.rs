//! Row data-bus structure.
//!
//! Each row of the array shares read and write buses to data memory
//! (Fig. 1(b): two read buses and one write bus per row in the 4×4
//! illustration). The base architecture of §5.1 extends Morphosys with
//! "multiple read/write data buses" per row; bus capacity limits how many
//! load/store operations a row can issue in one cycle, which the mapper
//! must respect (memory-operation sharing, ref. [7] of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-row data-bus provisioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BusSpec {
    read_buses: usize,
    write_buses: usize,
}

impl BusSpec {
    /// Creates a bus specification.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero — every row needs at least one read
    /// and one write bus to reach data memory.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::BusSpec;
    /// let b = BusSpec::new(2, 1);
    /// assert_eq!(b.read_buses(), 2);
    /// ```
    pub fn new(read_buses: usize, write_buses: usize) -> Self {
        assert!(
            read_buses > 0 && write_buses > 0,
            "each row needs at least one read and one write bus"
        );
        Self {
            read_buses,
            write_buses,
        }
    }

    /// The paper's Fig. 1 provisioning: two read buses, one write bus.
    pub fn paper_default() -> Self {
        Self::new(2, 1)
    }

    /// Number of read buses per row.
    pub fn read_buses(&self) -> usize {
        self.read_buses
    }

    /// Number of write buses per row.
    pub fn write_buses(&self) -> usize {
        self.write_buses
    }

    /// Maximum loads a row can issue in one cycle.
    pub fn load_capacity(&self) -> usize {
        self.read_buses
    }

    /// Maximum stores a row can issue in one cycle.
    pub fn store_capacity(&self) -> usize {
        self.write_buses
    }
}

impl Default for BusSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for BusSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}R/{}W per row", self.read_buses, self.write_buses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_fig1() {
        let b = BusSpec::paper_default();
        assert_eq!(b.read_buses(), 2);
        assert_eq!(b.write_buses(), 1);
        assert_eq!(b.load_capacity(), 2);
        assert_eq!(b.store_capacity(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_read_buses_rejected() {
        let _ = BusSpec::new(0, 1);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(BusSpec::default(), BusSpec::paper_default());
    }

    #[test]
    fn display_shape() {
        assert_eq!(BusSpec::new(2, 1).to_string(), "2R/1W per row");
    }
}
