//! Resource sharing and pipelining plan — the RSP template parameters.
//!
//! §4 of the paper lists the principal design-space parameters:
//!
//! * the types of shared functional resources,
//! * the types of pipelined resources,
//! * the number of pipeline stages of the pipelined resources,
//! * the number of rows of the shared resources (`shr`), and
//! * the number of columns of the shared resources (`shc`).
//!
//! Shared resources are placed in line with the rows and/or columns of the
//! array: a *row bank* of `shr` resources serves all PEs of its row, and a
//! *column bank* of `shc` resources serves all PEs of its column (Fig. 8).
//! Every PE reaches its banks through its private [bus switch](SwitchSpec),
//! whose fan-in is `shr + shc` alternatives.

use crate::fu::FuKind;
use crate::geometry::{ArrayGeometry, PeId};
use crate::ArchError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Maximum supported pipeline depth for a single resource.
///
/// The paper pipelines the multiplier into two stages; deeper pipelines are
/// allowed for exploration but bounded to keep stage delay meaningful.
pub const MAX_STAGES: u8 = 8;

/// One group of shared resources of a single functional-unit kind.
///
/// `per_row`/`per_col` are the paper's `shr`/`shc`; `stages == 1` means the
/// resource is combinational (pure RS), `stages >= 2` means it is also
/// pipelined (RSP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SharedGroup {
    kind: FuKind,
    per_row: usize,
    per_col: usize,
    stages: u8,
}

impl SharedGroup {
    /// Creates a shared group.
    ///
    /// # Errors
    ///
    /// * [`ArchError::NotSharable`] if `kind` cannot be extracted from PEs.
    /// * [`ArchError::EmptyGroup`] if both `per_row` and `per_col` are zero.
    /// * [`ArchError::BadStages`] if `stages` is zero or exceeds
    ///   [`MAX_STAGES`], or if `stages > 1` for a kind that is not
    ///   pipelinable.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::{FuKind, SharedGroup};
    /// // Two pipelined multipliers shared by every row (RSP#2 row part).
    /// let g = SharedGroup::new(FuKind::Multiplier, 2, 0, 2)?;
    /// assert_eq!(g.per_row(), 2);
    /// assert!(g.is_pipelined());
    /// # Ok::<(), rsp_arch::ArchError>(())
    /// ```
    pub fn new(
        kind: FuKind,
        per_row: usize,
        per_col: usize,
        stages: u8,
    ) -> Result<Self, ArchError> {
        if !kind.is_sharable() {
            return Err(ArchError::NotSharable(kind));
        }
        if per_row == 0 && per_col == 0 {
            return Err(ArchError::EmptyGroup(kind));
        }
        if stages == 0 || stages > MAX_STAGES {
            return Err(ArchError::BadStages { kind, stages });
        }
        if stages > 1 && !kind.is_pipelinable() {
            return Err(ArchError::BadStages { kind, stages });
        }
        Ok(Self {
            kind,
            per_row,
            per_col,
            stages,
        })
    }

    /// The shared functional-unit kind.
    pub fn kind(&self) -> FuKind {
        self.kind
    }

    /// `shr`: shared resources placed along each row.
    pub fn per_row(&self) -> usize {
        self.per_row
    }

    /// `shc`: shared resources placed along each column.
    pub fn per_col(&self) -> usize {
        self.per_col
    }

    /// Pipeline depth of each shared resource (1 = combinational).
    pub fn stages(&self) -> u8 {
        self.stages
    }

    /// Whether the shared resources are pipelined (RSP rather than RS).
    pub fn is_pipelined(&self) -> bool {
        self.stages > 1
    }

    /// Total physical resources of this group on an array:
    /// `n·shr + m·shc` (the multiplier of `Sh_Res_area` in eq. (2)).
    pub fn total_count(&self, geom: ArrayGeometry) -> usize {
        geom.rows() * self.per_row + geom.cols() * self.per_col
    }

    /// Fan-in each PE's bus switch needs for this group
    /// (`shr + shc` routing alternatives).
    pub fn switch_fan_in(&self) -> usize {
        self.per_row + self.per_col
    }
}

impl fmt::Display for SharedGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shr={} shc={} stages={}",
            self.kind, self.per_row, self.per_col, self.stages
        )
    }
}

/// Identity of one physical shared resource instance on the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SharedResourceId {
    /// The `index`-th resource of `kind` serving row `row`.
    Row {
        /// Functional-unit kind.
        kind: FuKind,
        /// Row served by this resource.
        row: usize,
        /// Index within the row bank, `0..shr`.
        index: usize,
    },
    /// The `index`-th resource of `kind` serving column `col`.
    Col {
        /// Functional-unit kind.
        kind: FuKind,
        /// Column served by this resource.
        col: usize,
        /// Index within the column bank, `0..shc`.
        index: usize,
    },
}

impl SharedResourceId {
    /// The functional-unit kind of this resource.
    pub fn kind(&self) -> FuKind {
        match *self {
            SharedResourceId::Row { kind, .. } | SharedResourceId::Col { kind, .. } => kind,
        }
    }

    /// Whether a PE can route operands to this resource (same row for a row
    /// bank, same column for a column bank).
    pub fn reaches(&self, pe: PeId) -> bool {
        match *self {
            SharedResourceId::Row { row, .. } => pe.row == row,
            SharedResourceId::Col { col, .. } => pe.col == col,
        }
    }
}

impl fmt::Display for SharedResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SharedResourceId::Row { kind, row, index } => {
                write!(f, "{kind}@row{row}.{index}")
            }
            SharedResourceId::Col { kind, col, index } => {
                write!(f, "{kind}@col{col}.{index}")
            }
        }
    }
}

/// The complete RSP parameter set: shared groups plus optional in-PE
/// (local) pipelining of non-shared resources.
///
/// `SharingPlan::none()` describes the base architecture.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct SharingPlan {
    groups: Vec<SharedGroup>,
    local_pipeline: BTreeMap<FuKind, u8>,
}

impl SharingPlan {
    /// The empty plan — the base architecture with fully-equipped PEs.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::SharingPlan;
    /// assert!(SharingPlan::none().is_base());
    /// ```
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a shared group.
    ///
    /// # Errors
    ///
    /// [`ArchError::DuplicateGroup`] if a group of the same kind exists.
    pub fn with_group(mut self, group: SharedGroup) -> Result<Self, ArchError> {
        if self.groups.iter().any(|g| g.kind() == group.kind()) {
            return Err(ArchError::DuplicateGroup(group.kind()));
        }
        self.groups.push(group);
        Ok(self)
    }

    /// Pipelines a *local* (non-shared) resource inside every PE into
    /// `stages` stages (pure RP, no sharing).
    ///
    /// # Errors
    ///
    /// [`ArchError::BadStages`] for invalid depth or non-pipelinable kinds;
    /// [`ArchError::DuplicateGroup`] if the kind is already shared (its
    /// pipelining then belongs to the shared group).
    pub fn with_local_pipeline(mut self, kind: FuKind, stages: u8) -> Result<Self, ArchError> {
        if stages == 0 || stages > MAX_STAGES || !kind.is_pipelinable() {
            return Err(ArchError::BadStages { kind, stages });
        }
        if self.groups.iter().any(|g| g.kind() == kind) {
            return Err(ArchError::DuplicateGroup(kind));
        }
        self.local_pipeline.insert(kind, stages);
        Ok(self)
    }

    /// Whether this is the base architecture (nothing shared or pipelined).
    pub fn is_base(&self) -> bool {
        self.groups.is_empty() && self.local_pipeline.is_empty()
    }

    /// The shared groups.
    pub fn groups(&self) -> &[SharedGroup] {
        &self.groups
    }

    /// The shared group for `kind`, if any.
    pub fn group(&self, kind: FuKind) -> Option<&SharedGroup> {
        self.groups.iter().find(|g| g.kind() == kind)
    }

    /// Whether `kind` is extracted from the PEs and shared.
    pub fn is_shared(&self, kind: FuKind) -> bool {
        self.group(kind).is_some()
    }

    /// Locally pipelined kinds and their depths.
    pub fn local_pipelines(&self) -> impl Iterator<Item = (FuKind, u8)> + '_ {
        self.local_pipeline.iter().map(|(k, v)| (*k, *v))
    }

    /// Effective latency in cycles of an operation on `kind` under this
    /// plan: the pipeline depth of the resource that executes it (shared
    /// bank, locally pipelined unit, or 1 for plain combinational units).
    pub fn latency_of(&self, kind: FuKind) -> u8 {
        if let Some(g) = self.group(kind) {
            g.stages()
        } else {
            self.local_pipeline.get(&kind).copied().unwrap_or(1)
        }
    }

    /// Total bus-switch fan-in each PE needs (sum over groups).
    pub fn switch_fan_in(&self) -> usize {
        self.groups.iter().map(SharedGroup::switch_fan_in).sum()
    }

    /// Whether any PE needs a bus switch at all.
    pub fn needs_switch(&self) -> bool {
        !self.groups.is_empty()
    }

    /// Whether any resource (shared or local) is pipelined — i.e. whether
    /// PEs need the extra pipeline-control registers (`Reg_area` of
    /// eq. (2)).
    pub fn has_pipelining(&self) -> bool {
        self.groups.iter().any(SharedGroup::is_pipelined) || !self.local_pipeline.is_empty()
    }

    /// Enumerates every physical shared resource on an array of the given
    /// geometry, row banks first, in a stable order.
    pub fn resources(&self, geom: ArrayGeometry) -> Vec<SharedResourceId> {
        let mut out = Vec::new();
        for g in &self.groups {
            for row in 0..geom.rows() {
                for index in 0..g.per_row() {
                    out.push(SharedResourceId::Row {
                        kind: g.kind(),
                        row,
                        index,
                    });
                }
            }
            for col in 0..geom.cols() {
                for index in 0..g.per_col() {
                    out.push(SharedResourceId::Col {
                        kind: g.kind(),
                        col,
                        index,
                    });
                }
            }
        }
        out
    }

    /// Enumerates the shared resources of `kind` reachable from `pe`
    /// (its row bank then its column bank) — the routing alternatives of
    /// that PE's bus switch.
    pub fn reachable_from(&self, pe: PeId, kind: FuKind) -> Vec<SharedResourceId> {
        let Some(g) = self.group(kind) else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(g.switch_fan_in());
        for index in 0..g.per_row() {
            out.push(SharedResourceId::Row {
                kind,
                row: pe.row,
                index,
            });
        }
        for index in 0..g.per_col() {
            out.push(SharedResourceId::Col {
                kind,
                col: pe.col,
                index,
            });
        }
        out
    }
}

impl fmt::Display for SharingPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_base() {
            return f.write_str("base (no sharing)");
        }
        let mut parts: Vec<String> = self.groups.iter().map(|g| g.to_string()).collect();
        for (k, s) in &self.local_pipeline {
            parts.push(format!("{k} local-pipe stages={s}"));
        }
        f.write_str(&parts.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mult_group(shr: usize, shc: usize, stages: u8) -> SharedGroup {
        SharedGroup::new(FuKind::Multiplier, shr, shc, stages).unwrap()
    }

    #[test]
    fn group_validation() {
        assert!(matches!(
            SharedGroup::new(FuKind::Mux, 1, 0, 1),
            Err(ArchError::NotSharable(FuKind::Mux))
        ));
        assert!(matches!(
            SharedGroup::new(FuKind::Multiplier, 0, 0, 1),
            Err(ArchError::EmptyGroup(_))
        ));
        assert!(matches!(
            SharedGroup::new(FuKind::Multiplier, 1, 0, 0),
            Err(ArchError::BadStages { .. })
        ));
        assert!(matches!(
            SharedGroup::new(FuKind::Multiplier, 1, 0, MAX_STAGES + 1),
            Err(ArchError::BadStages { .. })
        ));
    }

    #[test]
    fn totals_match_eq2() {
        // Fig. 8 arch #3 on 8x8: 2 per row + 1 per col = 8*2 + 8*1 = 24.
        let g = mult_group(2, 1, 1);
        assert_eq!(g.total_count(ArrayGeometry::new(8, 8)), 24);
        assert_eq!(g.switch_fan_in(), 3);
    }

    #[test]
    fn plan_rejects_duplicate_kind() {
        let plan = SharingPlan::none().with_group(mult_group(1, 0, 1)).unwrap();
        assert!(matches!(
            plan.with_group(mult_group(2, 0, 1)),
            Err(ArchError::DuplicateGroup(FuKind::Multiplier))
        ));
    }

    #[test]
    fn local_pipeline_conflicts_with_sharing() {
        let plan = SharingPlan::none().with_group(mult_group(1, 0, 2)).unwrap();
        assert!(plan.with_local_pipeline(FuKind::Multiplier, 2).is_err());
    }

    #[test]
    fn latency_reflects_stages() {
        let plan = SharingPlan::none().with_group(mult_group(2, 0, 2)).unwrap();
        assert_eq!(plan.latency_of(FuKind::Multiplier), 2);
        assert_eq!(plan.latency_of(FuKind::Alu), 1);

        let rp_only = SharingPlan::none()
            .with_local_pipeline(FuKind::Multiplier, 3)
            .unwrap();
        assert_eq!(rp_only.latency_of(FuKind::Multiplier), 3);
        assert!(rp_only.has_pipelining());
        assert!(!rp_only.needs_switch());
    }

    #[test]
    fn resource_enumeration_and_reachability() {
        let geom = ArrayGeometry::new(4, 4);
        let plan = SharingPlan::none().with_group(mult_group(2, 1, 2)).unwrap();
        let res = plan.resources(geom);
        // 4 rows * 2 + 4 cols * 1 = 12 resources.
        assert_eq!(res.len(), 12);

        let pe = PeId::new(1, 3);
        let reach = plan.reachable_from(pe, FuKind::Multiplier);
        assert_eq!(reach.len(), 3); // shr + shc
        assert!(reach.iter().all(|r| r.reaches(pe)));
        // A resource in another row must not be reachable.
        let foreign = SharedResourceId::Row {
            kind: FuKind::Multiplier,
            row: 0,
            index: 0,
        };
        assert!(!foreign.reaches(pe));
    }

    #[test]
    fn base_plan_is_empty() {
        let p = SharingPlan::none();
        assert!(p.is_base());
        assert_eq!(p.switch_fan_in(), 0);
        assert!(!p.has_pipelining());
        assert!(p.resources(ArrayGeometry::new(8, 8)).is_empty());
        assert_eq!(p.to_string(), "base (no sharing)");
    }

    #[test]
    fn reachable_from_unshared_kind_is_empty() {
        let p = SharingPlan::none();
        assert!(p
            .reachable_from(PeId::new(0, 0), FuKind::Multiplier)
            .is_empty());
    }
}
