//! Property tests for the kernel IR and the architectural arithmetic.

use proptest::prelude::*;
use rsp_arch::OpKind;
use rsp_kernel::{apply_op, suite, AddrExpr, ArrayId, Bindings, MemoryImage};

proptest! {
    #[test]
    fn addr_expr_is_affine(
        base in -100i64..100,
        cd in -8i64..8,
        cm in -8i64..8,
        cs in -8i64..8,
        e in 0usize..1000,
        s in 0usize..100,
        d in 1usize..16,
    ) {
        let a = AddrExpr::affine(ArrayId(0), base, cd, cm, cs);
        let v = a.eval(e, s, d);
        prop_assert_eq!(
            v,
            base + cd * (e / d) as i64 + cm * (e % d) as i64 + cs * s as i64
        );
        // Step linearity: eval(e, s+1) - eval(e, s) == cs.
        prop_assert_eq!(a.eval(e, s + 1, d) - v, cs);
    }

    #[test]
    fn add_commutes_and_sub_inverts(a in any::<i32>(), b in any::<i32>()) {
        prop_assert_eq!(apply_op(OpKind::Add, a, b), apply_op(OpKind::Add, b, a));
        let sum = apply_op(OpKind::Add, a, b);
        prop_assert_eq!(apply_op(OpKind::Sub, sum, b), a);
    }

    #[test]
    fn mult_commutes_and_respects_low16(a in any::<i32>(), b in any::<i32>()) {
        prop_assert_eq!(apply_op(OpKind::Mult, a, b), apply_op(OpKind::Mult, b, a));
        // The array multiplier only sees the low 16 bits.
        let masked = apply_op(OpKind::Mult, a as i16 as i32, b as i16 as i32);
        prop_assert_eq!(apply_op(OpKind::Mult, a, b), masked);
        // 16x16 products fit comfortably in 32 bits: no wrap possible.
        let exact = (a as i16 as i64) * (b as i16 as i64);
        prop_assert_eq!(apply_op(OpKind::Mult, a, b) as i64, exact);
    }

    #[test]
    fn min_max_bracket_inputs(a in any::<i32>(), b in any::<i32>()) {
        let lo = apply_op(OpKind::Min, a, b);
        let hi = apply_op(OpKind::Max, a, b);
        prop_assert!(lo <= hi);
        prop_assert!(lo == a || lo == b);
        prop_assert!(hi == a || hi == b);
    }

    #[test]
    fn shifts_agree_with_masked_amount(a in any::<i32>(), sh in any::<i32>()) {
        let m = (sh & 0xF) as u32;
        prop_assert_eq!(apply_op(OpKind::Shl, a, sh), a.wrapping_shl(m));
        prop_assert_eq!(apply_op(OpKind::Shr, a, sh), ((a as u32) >> m) as i32);
        prop_assert_eq!(apply_op(OpKind::Asr, a, sh), a >> m);
    }

    #[test]
    fn abs_is_non_negative_except_min(a in any::<i32>()) {
        let r = apply_op(OpKind::Abs, a, 0);
        if a == i32::MIN {
            prop_assert_eq!(r, i32::MIN); // wrapping_abs, like the hardware
        } else {
            prop_assert!(r >= 0);
            prop_assert_eq!(r, a.abs());
        }
    }

    #[test]
    fn random_images_are_deterministic_and_bounded(seed in any::<u64>()) {
        let k = suite::mvm();
        let a = MemoryImage::random(&k, seed);
        let b = MemoryImage::random(&k, seed);
        prop_assert_eq!(&a, &b);
        for arr in 0..a.array_count() {
            prop_assert!(a.array(arr).iter().all(|v| (-63..=63).contains(v)));
        }
    }

    #[test]
    fn evaluation_is_deterministic(seed in any::<u64>()) {
        for k in [suite::hydro(), suite::fdct()] {
            let img = MemoryImage::random(&k, seed);
            let p = Bindings::defaults(&k);
            let a = rsp_kernel::evaluate(&k, &img, &p).unwrap();
            let b = rsp_kernel::evaluate(&k, &img, &p).unwrap();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn param_override_changes_only_dependent_outputs(r in -10i32..10) {
        // Hydro's x depends on r; changing r must not touch inputs.
        let k = suite::hydro();
        let img = MemoryImage::random(&k, 77);
        let mut p = Bindings::defaults(&k);
        p.set(1, r); // r parameter
        let out = rsp_kernel::evaluate(&k, &img, &p).unwrap();
        // Inputs unchanged.
        prop_assert_eq!(out.array(0), img.array(0));
        prop_assert_eq!(out.array(1), img.array(1));
        // Outputs follow the closed form.
        for i in 0..32usize {
            let expect = 5 + img.read(1, i) * (r * img.read(0, i + 10) + 3 * img.read(0, i + 11));
            prop_assert_eq!(out.read(2, i), expect);
        }
    }
}

#[test]
fn suite_kernels_serialize_compactly() {
    // Sanity on the serde representation (no recursion, readable sizes).
    for k in suite::all() {
        let json = serde_json::to_string(&k).unwrap();
        assert!(
            json.len() < 64 * 1024,
            "{} serializes to {}B",
            k.name(),
            json.len()
        );
    }
}
