//! # rsp-kernel — loop-kernel IR and the DATE 2005 benchmark suite
//!
//! Dataflow-graph representation of the loop kernels evaluated by
//! *"Resource Sharing and Pipelining in Coarse-Grained Reconfigurable
//! Architecture for Domain-Specific Optimization"* (Kim et al., DATE 2005),
//! plus a reference evaluator that defines the architecturally-visible
//! semantics every schedule must preserve.
//!
//! A [`Kernel`] is `elements × steps` executions of a [`Dfg`] body with an
//! optional per-element tail; [`suite`] provides the paper's nine kernels
//! (five Livermore loops, four DSP loops) and the matrix multiplication of
//! Figs. 2/6.
//!
//! # Examples
//!
//! ```
//! use rsp_kernel::{evaluate, suite, Bindings, MemoryImage};
//!
//! let kernel = suite::matmul(4);
//! let input = MemoryImage::random(&kernel, 1);
//! let output = evaluate(&kernel, &input, &Bindings::defaults(&kernel))?;
//! // Z lives in array 2; its 16 entries are C-scaled dot products.
//! assert_eq!(output.array(2).len(), 16);
//! # Ok::<(), rsp_kernel::KernelError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod dfg;
mod error;
mod eval;
mod kernel;
pub mod suite;

pub use dfg::{AddrExpr, ArrayId, Dfg, DfgBuilder, Node, NodeId, Operand, ParamId};
pub use error::KernelError;
pub use eval::{apply_op, evaluate, Bindings, MemoryImage};
pub use kernel::{ArrayDecl, Kernel, KernelBuilder, MappingStyle, ParamDecl};
