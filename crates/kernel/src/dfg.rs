//! Dataflow-graph IR for loop bodies.
//!
//! A [`Dfg`] describes the operations of one *step* of one loop element
//! (see [`Kernel`](crate::Kernel) for the element/step iteration model).
//! Nodes are stored in topological order by construction: every operand may
//! only reference an earlier node, so the graph is acyclic without a
//! separate check. Cross-step dependences are expressed with
//! [`Operand::Accum`] (a PE-local accumulator register) and tail code reads
//! final accumulator values with [`Operand::Carry`].

use rsp_arch::OpKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node within one [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's position in its graph.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a declared memory array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// The array's position in the kernel's declarations.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a declared loop-invariant scalar parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ParamId(pub u32);

impl ParamId {
    /// The parameter's position in the kernel's declarations.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A value operand of a DFG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// Primary output of an earlier node in the same graph.
    Node(NodeId),
    /// Secondary output of an earlier *dual load* node (the word fetched on
    /// the second row read bus).
    Pair(NodeId),
    /// Immediate constant from the configuration context.
    Const(i32),
    /// Loop-invariant scalar parameter (e.g. `r`, `t`, `q` of the Livermore
    /// kernels, or the constant `C` of eq. (1)).
    Param(ParamId),
    /// PE-local accumulator: the value the referenced body node produced in
    /// the *previous step* of the same element, or `init` at step 0.
    ///
    /// Only valid in kernel bodies.
    Accum {
        /// The body node whose previous-step value is read (self-reference
        /// is the common accumulation idiom).
        node: NodeId,
        /// Value read at the first step.
        init: i32,
    },
    /// Final accumulated value of a body node after the last step of the
    /// element. Only valid in tail graphs.
    Carry(NodeId),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Operand::Node(n) => write!(f, "{n}"),
            Operand::Pair(n) => write!(f, "{n}.hi"),
            Operand::Const(c) => write!(f, "#{c}"),
            Operand::Param(p) => write!(f, "p{}", p.0),
            Operand::Accum { node, init } => write!(f, "acc({node},init={init})"),
            Operand::Carry(n) => write!(f, "carry({n})"),
        }
    }
}

/// Affine address expression for load/store nodes.
///
/// For element `e` and step `s`, with the kernel-level element divisor `d`
/// (see [`Kernel::elem_divisor`](crate::Kernel::elem_divisor)), the address
/// is:
///
/// ```text
/// addr = base + coef_div * (e / d) + coef_mod * (e % d) + coef_step * s
/// ```
///
/// Flat kernels use `d = 1` so `coef_div` multiplies the element index
/// directly. Two-dimensional element spaces (matrix multiplication, block
/// transforms) pick `d` = row length so `e / d` and `e % d` are the two
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrExpr {
    /// Target array.
    pub array: ArrayId,
    /// Constant offset.
    pub base: i64,
    /// Coefficient of `e / d`.
    pub coef_div: i64,
    /// Coefficient of `e % d`.
    pub coef_mod: i64,
    /// Coefficient of the step index.
    pub coef_step: i64,
}

impl AddrExpr {
    /// A fixed address independent of element and step.
    pub fn fixed(array: ArrayId, base: i64) -> Self {
        Self {
            array,
            base,
            coef_div: 0,
            coef_mod: 0,
            coef_step: 0,
        }
    }

    /// `base + stride * e` for flat element spaces (`d = 1`).
    pub fn flat(array: ArrayId, base: i64, stride: i64) -> Self {
        Self {
            array,
            base,
            coef_div: stride,
            coef_mod: 0,
            coef_step: 0,
        }
    }

    /// Fully general affine expression.
    pub fn affine(array: ArrayId, base: i64, coef_div: i64, coef_mod: i64, coef_step: i64) -> Self {
        Self {
            array,
            base,
            coef_div,
            coef_mod,
            coef_step,
        }
    }

    /// Evaluates the address for `(element, step)` under divisor `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn eval(&self, element: usize, step: usize, d: usize) -> i64 {
        assert!(d > 0, "element divisor must be non-zero");
        let ediv = (element / d) as i64;
        let emod = (element % d) as i64;
        self.base + self.coef_div * ediv + self.coef_mod * emod + self.coef_step * step as i64
    }
}

/// One operation node of a [`Dfg`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    op: OpKind,
    operands: Vec<Operand>,
    addr: Option<AddrExpr>,
    addr2: Option<AddrExpr>,
}

impl Node {
    pub(crate) fn new(
        op: OpKind,
        operands: Vec<Operand>,
        addr: Option<AddrExpr>,
        addr2: Option<AddrExpr>,
    ) -> Self {
        Self {
            op,
            operands,
            addr,
            addr2,
        }
    }

    /// The operation kind.
    pub fn op(&self) -> OpKind {
        self.op
    }

    /// The value operands.
    pub fn operands(&self) -> &[Operand] {
        &self.operands
    }

    /// Primary address (loads and stores).
    pub fn addr(&self) -> Option<&AddrExpr> {
        self.addr.as_ref()
    }

    /// Secondary address of a dual load.
    pub fn addr2(&self) -> Option<&AddrExpr> {
        self.addr2.as_ref()
    }

    /// Whether this is a dual load fetching two words in one cycle (over
    /// both row read buses, as in the paper's Fig. 2 `Ld` operations).
    pub fn is_dual_load(&self) -> bool {
        self.op == OpKind::Load && self.addr2.is_some()
    }

    /// Words of row-bus traffic this node generates in its issue cycle.
    pub fn bus_words(&self) -> usize {
        match self.op {
            OpKind::Load => 1 + usize::from(self.addr2.is_some()),
            OpKind::Store => 1,
            _ => 0,
        }
    }
}

/// A dataflow graph in topological order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Dfg {
    nodes: Vec<Node>,
}

impl Dfg {
    /// The nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterates `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Number of nodes executing on the given functional unit.
    pub fn count_op<F: Fn(OpKind) -> bool>(&self, pred: F) -> usize {
        self.nodes.iter().filter(|n| pred(n.op())).count()
    }

    /// Number of multiplication nodes.
    pub fn mult_count(&self) -> usize {
        self.count_op(|o| o == OpKind::Mult)
    }

    /// Longest dependence path length counted in nodes (unit latencies).
    ///
    /// Cross-step `Accum` edges and constants do not contribute.
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            let mut d = 1;
            for op in n.operands() {
                if let Operand::Node(p) | Operand::Pair(p) = op {
                    d = d.max(depth[p.index()] + 1);
                }
            }
            depth[i] = d;
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Number of multiplications on the longest dependence path (ties
    /// broken toward more multiplications). This drives the paper's RP
    /// stall estimate: each pipelined multiplication on the critical chain
    /// delays its dependents by `stages - 1` cycles.
    pub fn critical_path_mults(&self) -> usize {
        let mut depth = vec![(0usize, 0usize); self.nodes.len()]; // (len, mults)
        for (i, n) in self.nodes.iter().enumerate() {
            let mut best = (1usize, usize::from(n.op() == OpKind::Mult));
            for op in n.operands() {
                if let Operand::Node(p) | Operand::Pair(p) = op {
                    let (pl, pm) = depth[p.index()];
                    let cand = (pl + 1, pm + usize::from(n.op() == OpKind::Mult));
                    if cand > best {
                        best = cand;
                    }
                }
            }
            depth[i] = best;
        }
        depth.into_iter().max().map(|(_, m)| m).unwrap_or(0)
    }

    pub(crate) fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }
}

/// Incremental builder for [`Dfg`] graphs.
///
/// # Examples
///
/// Build `store(x * r + q)`:
///
/// ```
/// use rsp_kernel::{AddrExpr, ArrayId, DfgBuilder, Operand, ParamId};
///
/// let mut b = DfgBuilder::new();
/// let x = b.load(AddrExpr::flat(ArrayId(0), 0, 1));
/// let m = b.mult(Operand::Node(x), Operand::Param(ParamId(0)));
/// let a = b.add(Operand::Node(m), Operand::Param(ParamId(1)));
/// b.store(AddrExpr::flat(ArrayId(1), 0, 1), Operand::Node(a));
/// let dfg = b.finish();
/// assert_eq!(dfg.len(), 4);
/// assert_eq!(dfg.mult_count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct DfgBuilder {
    dfg: Dfg,
}

impl DfgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an arbitrary operation node.
    pub fn op(&mut self, op: OpKind, operands: Vec<Operand>) -> NodeId {
        self.dfg.push(Node::new(op, operands, None, None))
    }

    /// Adds a single-word load.
    pub fn load(&mut self, addr: AddrExpr) -> NodeId {
        self.dfg
            .push(Node::new(OpKind::Load, Vec::new(), Some(addr), None))
    }

    /// Adds a dual load fetching two words over both row read buses in one
    /// cycle. The primary word is the node's value; the secondary word is
    /// read with [`Operand::Pair`].
    pub fn load_pair(&mut self, addr: AddrExpr, addr2: AddrExpr) -> NodeId {
        self.dfg
            .push(Node::new(OpKind::Load, Vec::new(), Some(addr), Some(addr2)))
    }

    /// Adds a store of `value`.
    pub fn store(&mut self, addr: AddrExpr, value: Operand) -> NodeId {
        self.dfg
            .push(Node::new(OpKind::Store, vec![value], Some(addr), None))
    }

    /// Adds an addition.
    pub fn add(&mut self, a: Operand, b: Operand) -> NodeId {
        self.op(OpKind::Add, vec![a, b])
    }

    /// Adds a subtraction `a - b`.
    pub fn sub(&mut self, a: Operand, b: Operand) -> NodeId {
        self.op(OpKind::Sub, vec![a, b])
    }

    /// Adds a multiplication.
    pub fn mult(&mut self, a: Operand, b: Operand) -> NodeId {
        self.op(OpKind::Mult, vec![a, b])
    }

    /// Adds an absolute value.
    pub fn abs(&mut self, a: Operand) -> NodeId {
        self.op(OpKind::Abs, vec![a])
    }

    /// Adds a logical left shift `a << b`.
    pub fn shl(&mut self, a: Operand, b: Operand) -> NodeId {
        self.op(OpKind::Shl, vec![a, b])
    }

    /// Adds an arithmetic right shift `a >> b`.
    pub fn asr(&mut self, a: Operand, b: Operand) -> NodeId {
        self.op(OpKind::Asr, vec![a, b])
    }

    /// Adds an accumulating addition: `value + acc`, where `acc` is this
    /// node's own previous-step output (or `init` at step 0).
    pub fn accum_add(&mut self, value: Operand, init: i32) -> NodeId {
        let id = NodeId(self.dfg.len() as u32);
        self.dfg.push(Node::new(
            OpKind::Add,
            vec![value, Operand::Accum { node: id, init }],
            None,
            None,
        ));
        id
    }

    /// Finishes and returns the graph.
    pub fn finish(self) -> Dfg {
        self.dfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_topological_graph() {
        let mut b = DfgBuilder::new();
        let l = b.load_pair(
            AddrExpr::flat(ArrayId(0), 0, 1),
            AddrExpr::flat(ArrayId(1), 0, 1),
        );
        let m = b.mult(Operand::Node(l), Operand::Pair(l));
        let a = b.accum_add(Operand::Node(m), 0);
        let g = b.finish();
        assert_eq!(g.len(), 3);
        assert!(g.node(l).is_dual_load());
        assert_eq!(g.node(l).bus_words(), 2);
        assert_eq!(g.node(m).op(), OpKind::Mult);
        // The accumulator self-references.
        assert_eq!(g.node(a).operands()[1], Operand::Accum { node: a, init: 0 });
    }

    #[test]
    fn addr_eval_matches_affine_form() {
        // matmul-style X[i, k] with i = e / 4, k = s, row stride 4.
        let x = AddrExpr::affine(ArrayId(0), 0, 4, 0, 1);
        assert_eq!(x.eval(9, 2, 4), 4 * (9 / 4) + 2); // i = 2, k = 2 -> 10
        let flat = AddrExpr::flat(ArrayId(0), 10, 1);
        assert_eq!(flat.eval(5, 0, 1), 15);
        let fixed = AddrExpr::fixed(ArrayId(0), 7);
        assert_eq!(fixed.eval(123, 45, 8), 7);
    }

    #[test]
    fn critical_path_counts() {
        let mut b = DfgBuilder::new();
        let l = b.load(AddrExpr::flat(ArrayId(0), 0, 1));
        let m1 = b.mult(Operand::Node(l), Operand::Const(3));
        let m2 = b.mult(Operand::Node(m1), Operand::Const(5));
        let _ = b.add(Operand::Node(m2), Operand::Const(1));
        let g = b.finish();
        assert_eq!(g.critical_path_len(), 4);
        assert_eq!(g.critical_path_mults(), 2);
        assert_eq!(g.mult_count(), 2);
    }

    #[test]
    fn single_load_bus_words() {
        let mut b = DfgBuilder::new();
        let l = b.load(AddrExpr::flat(ArrayId(0), 0, 1));
        let s = b.store(AddrExpr::flat(ArrayId(1), 0, 1), Operand::Node(l));
        let g = b.finish();
        assert_eq!(g.node(l).bus_words(), 1);
        assert!(!g.node(l).is_dual_load());
        assert_eq!(g.node(s).bus_words(), 1);
    }

    #[test]
    fn empty_graph_properties() {
        let g = Dfg::default();
        assert!(g.is_empty());
        assert_eq!(g.critical_path_len(), 0);
        assert_eq!(g.critical_path_mults(), 0);
    }

    #[test]
    fn operand_display() {
        assert_eq!(Operand::Node(NodeId(3)).to_string(), "n3");
        assert_eq!(Operand::Pair(NodeId(1)).to_string(), "n1.hi");
        assert_eq!(Operand::Const(-4).to_string(), "#-4");
        assert_eq!(Operand::Param(ParamId(2)).to_string(), "p2");
        assert_eq!(Operand::Carry(NodeId(0)).to_string(), "carry(n0)");
    }

    #[test]
    #[should_panic(expected = "divisor")]
    fn zero_divisor_panics() {
        AddrExpr::fixed(ArrayId(0), 0).eval(0, 0, 0);
    }
}
