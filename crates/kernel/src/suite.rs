//! The paper's kernel suite (Table 3).
//!
//! Five Livermore-loop kernels and four DSP kernels, plus the matrix
//! multiplication of eq. (1) used by Figs. 2 and 6. Each kernel records the
//! loop it models in its description. Iteration counts match the paper's
//! Table 4/5 headers (`Hydro(32†)` etc.).
//!
//! Mapping-style assignments follow the papers' observed stall behaviour:
//! kernels whose bodies are small and multiplication-light run
//! [`MappingStyle::Lockstep`] (one element per PE, Fig. 2 discipline);
//! multiplication-dense bodies (Hydro, State, 2D-FDCT, FFT) run
//! [`MappingStyle::Dataflow`] (element spread over a row), which is what
//! makes them contend for shared multipliers exactly as in Tables 4/5.

use crate::dfg::{AddrExpr, DfgBuilder, Operand};
use crate::kernel::{Kernel, KernelBuilder, MappingStyle};

use Operand::{Node as N, Pair as P, Param as Pa};

/// Matrix multiplication of order `n` (eq. (1)):
/// `Z(i,j) = C * sum_k X(i,k) * Y(k,j)`.
///
/// One element per output `Z(i,j)`, `n` accumulation steps, and a tail that
/// scales by the configuration constant `C` and stores — the exact schedule
/// shape of the paper's Fig. 2.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let k = rsp_kernel::suite::matmul(4);
/// assert_eq!(k.elements(), 16);
/// assert_eq!(k.steps(), 4);
/// assert_eq!(k.body_mults(), 1);
/// ```
pub fn matmul(n: usize) -> Kernel {
    assert!(n > 0, "matrix order must be non-zero");
    let mut kb = KernelBuilder::new("MatMul", n * n);
    let x = kb.array("X", n * n);
    let y = kb.array("Y", n * n);
    let z = kb.array("Z", n * n);
    let c = kb.param("C", 3);
    let ni = n as i64;

    let mut b = DfgBuilder::new();
    // One Ld fetches both operands over the two row read buses (Fig. 2).
    let l = b.load_pair(
        AddrExpr::affine(x, 0, ni, 0, 1), // X[i, k], i = e / n, k = step
        AddrExpr::affine(y, 0, 0, 1, ni), // Y[k, j], j = e % n
    );
    let m = b.mult(N(l), P(l));
    let acc = b.accum_add(N(m), 0);

    let mut t = DfgBuilder::new();
    let scaled = t.mult(Operand::Carry(acc), Pa(c));
    t.store(AddrExpr::affine(z, 0, ni, 1, 0), N(scaled));

    kb.steps(n)
        .elem_divisor(n)
        .description("Z(i,j) = C * sum_k X(i,k)*Y(k,j)  (paper eq. (1), Figs. 2/6)")
        .style(MappingStyle::Lockstep)
        .body(b.finish())
        .tail(t.finish())
        .build()
        .expect("matmul kernel is valid")
}

/// Livermore loop 1 — *Hydro fragment*:
/// `x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])`, 32 iterations.
pub fn hydro() -> Kernel {
    let mut kb = KernelBuilder::new("Hydro", 32);
    let z = kb.array("z", 43);
    let y = kb.array("y", 32);
    let x = kb.array("x", 32);
    let q = kb.param("q", 5);
    let r = kb.param("r", 2);
    let t = kb.param("t", 3);

    let mut b = DfgBuilder::new();
    let lz = b.load_pair(AddrExpr::flat(z, 10, 1), AddrExpr::flat(z, 11, 1));
    let ly = b.load(AddrExpr::flat(y, 0, 1));
    let m0 = b.mult(Pa(r), N(lz));
    let m1 = b.mult(Pa(t), P(lz));
    let a0 = b.add(N(m0), N(m1));
    let m2 = b.mult(N(ly), N(a0));
    let a1 = b.add(N(m2), Pa(q));
    b.store(AddrExpr::flat(x, 0, 1), N(a1));

    kb.description("x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])  (Livermore loop 1)")
        .style(MappingStyle::Dataflow)
        .body(b.finish())
        .build()
        .expect("hydro kernel is valid")
}

/// Livermore loop 2 — *ICCG (incomplete Cholesky conjugate gradient)*
/// inner operation: `x[i] = x[i] - v[i] * x[i+1]`, 32 iterations.
pub fn iccg() -> Kernel {
    let mut kb = KernelBuilder::new("ICCG", 32);
    let x = kb.array("x", 33);
    let v = kb.array("v", 32);
    let out = kb.array("xout", 32);

    let mut b = DfgBuilder::new();
    let l = b.load_pair(AddrExpr::flat(x, 1, 1), AddrExpr::flat(v, 0, 1));
    let m = b.mult(P(l), N(l));
    let lx = b.load(AddrExpr::flat(x, 0, 1));
    let s = b.sub(N(lx), N(m));
    b.store(AddrExpr::flat(out, 0, 1), N(s));

    kb.description("x[i] = x[i] - v[i]*x[i+1]  (Livermore loop 2, ICCG)")
        .style(MappingStyle::Lockstep)
        .body(b.finish())
        .build()
        .expect("iccg kernel is valid")
}

/// Livermore loop 5 — *Tri-diagonal elimination (below diagonal)*:
/// `x[i] = z[i] * (y[i] - x[i-1])`, 64 iterations (Jacobi-style reads of
/// the previous sweep's `x`, per the snapshot-memory model).
pub fn tri_diagonal() -> Kernel {
    let mut kb = KernelBuilder::new("Tri-diagonal", 64);
    let y = kb.array("y", 64);
    let xin = kb.array("xprev", 64); // xprev[i] models x[i-1]
    let z = kb.array("z", 64);
    let out = kb.array("xout", 64);

    let mut b = DfgBuilder::new();
    let l = b.load_pair(AddrExpr::flat(y, 0, 1), AddrExpr::flat(xin, 0, 1));
    let s = b.sub(N(l), P(l));
    let lz = b.load(AddrExpr::flat(z, 0, 1));
    let m = b.mult(N(lz), N(s));
    b.store(AddrExpr::flat(out, 0, 1), N(m));

    kb.description("x[i] = z[i]*(y[i] - x[i-1])  (Livermore loop 5)")
        .style(MappingStyle::Lockstep)
        .body(b.finish())
        .build()
        .expect("tri-diagonal kernel is valid")
}

/// Livermore loop 3 — *Inner product*: `q += z[k] * x[k]`, 128 iterations.
///
/// Each element computes one product and adds it into its PE-local
/// accumulator; per-PE partials are stored and reduced by the sequencer
/// (the host reduction is outside the measured kernel, as in the paper).
pub fn inner_product() -> Kernel {
    let mut kb = KernelBuilder::new("Inner product", 128);
    let z = kb.array("z", 128);
    let x = kb.array("x", 128);
    let partial = kb.array("partial", 128);

    let mut b = DfgBuilder::new();
    let l = b.load_pair(AddrExpr::flat(z, 0, 1), AddrExpr::flat(x, 0, 1));
    let m = b.mult(N(l), P(l));
    let acc = b.accum_add(N(m), 0);

    let mut t = DfgBuilder::new();
    t.store(AddrExpr::flat(partial, 0, 1), Operand::Carry(acc));

    kb.description("q += z[k]*x[k]  (Livermore loop 3)")
        .style(MappingStyle::Lockstep)
        .body(b.finish())
        .tail(t.finish())
        .build()
        .expect("inner-product kernel is valid")
}

/// Livermore loop 7 — *Equation of state fragment*, 16 iterations:
///
/// ```text
/// x[k] = u[k] + r*(z[k] + r*y[k])
///      + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
///      + t*(u[k+6] + r*(u[k+5] + r*u[k+4])))
/// ```
pub fn state() -> Kernel {
    let mut kb = KernelBuilder::new("State", 16);
    let u = kb.array("u", 22);
    let zy = kb.array("zy", 32); // z interleaved at +0, y at +16
    let x = kb.array("x", 16);
    let r = kb.param("r", 2);
    let t = kb.param("t", 3);

    let mut b = DfgBuilder::new();
    let lu01 = b.load_pair(AddrExpr::flat(u, 0, 1), AddrExpr::flat(u, 1, 1));
    let lzy = b.load_pair(AddrExpr::flat(zy, 0, 1), AddrExpr::flat(zy, 16, 1));
    let lu23 = b.load_pair(AddrExpr::flat(u, 2, 1), AddrExpr::flat(u, 3, 1));
    let lu45 = b.load_pair(AddrExpr::flat(u, 4, 1), AddrExpr::flat(u, 5, 1));
    let lu6 = b.load(AddrExpr::flat(u, 6, 1));

    let m1 = b.mult(Pa(r), P(lzy)); // r*y
    let a1 = b.add(N(lzy), N(m1)); // z + r*y
    let m2 = b.mult(Pa(r), N(a1));
    let a2 = b.add(N(lu01), N(m2)); // u[k] + r*(z + r*y)

    let m3 = b.mult(Pa(r), P(lu01)); // r*u[k+1]
    let a3 = b.add(N(lu23), N(m3)); // u[k+2] + r*u[k+1]
    let m4 = b.mult(Pa(r), N(a3));
    let a4 = b.add(P(lu23), N(m4)); // u[k+3] + r*(...)

    let m5 = b.mult(Pa(r), N(lu45)); // r*u[k+4]
    let a5 = b.add(P(lu45), N(m5)); // u[k+5] + r*u[k+4]
    let m6 = b.mult(Pa(r), N(a5));
    let a6 = b.add(N(lu6), N(m6)); // u[k+6] + r*(...)

    let m7 = b.mult(Pa(t), N(a6));
    let a7 = b.add(N(a4), N(m7));
    let m8 = b.mult(Pa(t), N(a7));
    let a8 = b.add(N(a2), N(m8));
    b.store(AddrExpr::flat(x, 0, 1), N(a8));

    kb.description("x[k] = u[k] + r*(z[k]+r*y[k]) + t*(u[k+3]+r*(u[k+2]+r*u[k+1]) + t*(u[k+6]+r*(u[k+5]+r*u[k+4])))  (Livermore loop 7)")
        .style(MappingStyle::Dataflow)
        .body(b.finish())
        .build()
        .expect("state kernel is valid")
}

/// 2D forward DCT of the H.263 encoder, modelled as 16 one-dimensional
/// 8-point DCT passes (8 row passes + 8 column passes over the transposed
/// intermediate, which the frame buffer supplies with unit stride).
///
/// The pass is a Loeffler-style factorization: butterfly stages plus
/// three-multiplication plane rotations, two of them chained in the odd
/// half — the rotation cascade is what gives the kernel its multi-cycle
/// multiplication *chains*, which resource pipelining stretches (the large
/// RP overhead of the paper's Table 5) and whose slack then absorbs the
/// sharing conflicts (RSP#2 stall-free where RS#2 stalls).
///
/// Coefficients are `round(256 * cos(k*pi/16))` (and rotation deltas);
/// every product is scaled back with an arithmetic right shift, giving the
/// paper's `{mult, shift, add, sub}` operation set.
pub fn fdct() -> Kernel {
    let mut kb = KernelBuilder::new("2D-FDCT", 16);
    let input = kb.array("in", 128);
    let out = kb.array("coef", 128);
    // cos(k*pi/16) scaled by 256.
    let c4 = kb.param("c4", 181);
    let c6 = kb.param("c6", 97);
    let k2m6 = kb.param("c2-c6", 140); // c2 - c6
    let k2p6 = kb.param("c2+c6", 334); // c2 + c6
    let c3 = kb.param("c3", 213);
    let k1m3 = kb.param("c1-c3", 38); // c1 - c3
    let k1p3 = kb.param("c1+c3", 464); // c1 + c3
    let c1 = kb.param("c1", 251);
    let k5m1 = kb.param("c5-c1", -109); // c5 - c1
    let k5p1 = kb.param("c5+c1", 393); // c5 + c1
    let c5 = kb.param("c5", 142);
    let k7m5 = kb.param("c7-c5", -93); // c7 - c5
    let k7p5 = kb.param("c7+c5", 191); // c7 + c5
    let sh = Operand::Const(8);

    let at = |base: i64| AddrExpr::flat(input, base, 8);
    let ot = |base: i64| AddrExpr::flat(out, base, 8);

    let mut b = DfgBuilder::new();
    let lp0 = b.load_pair(at(0), at(7));
    let lp1 = b.load_pair(at(1), at(6));
    let lp2 = b.load_pair(at(2), at(5));
    let lp3 = b.load_pair(at(3), at(4));

    // Stage 1 butterflies.
    let s07 = b.add(N(lp0), P(lp0));
    let d07 = b.sub(N(lp0), P(lp0));
    let s16 = b.add(N(lp1), P(lp1));
    let d16 = b.sub(N(lp1), P(lp1));
    let s25 = b.add(N(lp2), P(lp2));
    let d25 = b.sub(N(lp2), P(lp2));
    let s34 = b.add(N(lp3), P(lp3));
    let d34 = b.sub(N(lp3), P(lp3));

    // Three-multiplication rotation: given (u, v) and coefficients
    // (c, c_a - c, c_a + c) it produces (c_a*u + c*v, c*u - c_b*v)-style
    // outputs with one shared product.
    let rot = |b: &mut DfgBuilder,
               u: crate::dfg::NodeId,
               v: crate::dfg::NodeId,
               c: crate::dfg::ParamId,
               km: crate::dfg::ParamId,
               kp: crate::dfg::ParamId| {
        let a = b.add(N(u), N(v));
        let p = b.mult(Pa(c), N(a));
        let q = b.mult(Pa(km), N(u));
        let r = b.mult(Pa(kp), N(v));
        let hi = b.add(N(p), N(q));
        let lo = b.sub(N(p), N(r));
        (hi, lo)
    };

    // Even half.
    let se0 = b.add(N(s07), N(s34));
    let se1 = b.add(N(s16), N(s25));
    let de0 = b.sub(N(s07), N(s34));
    let de1 = b.sub(N(s16), N(s25));

    let t0 = b.add(N(se0), N(se1));
    let m0 = b.mult(N(t0), Pa(c4));
    let x0 = b.asr(N(m0), sh);
    b.store(ot(0), N(x0));

    let t1 = b.sub(N(se0), N(se1));
    let m1 = b.mult(N(t1), Pa(c4));
    let x4 = b.asr(N(m1), sh);
    b.store(ot(4), N(x4));

    // X2/X6 rotation by c2/c6.
    let (e_hi, e_lo) = rot(&mut b, de0, de1, c6, k2m6, k2p6);
    let x2 = b.asr(N(e_hi), sh);
    b.store(ot(2), N(x2));
    let x6 = b.asr(N(e_lo), sh);
    b.store(ot(6), N(x6));

    // Odd half: two rotations feeding a third — the multiplication chain.
    let (a_hi, a_lo) = rot(&mut b, d07, d34, c3, k1m3, k1p3);
    let (b_hi, b_lo) = rot(&mut b, d16, d25, c1, k5m1, k5p1);

    let x1v = b.add(N(a_hi), N(b_hi));
    let x1 = b.asr(N(x1v), sh);
    b.store(ot(1), N(x1));
    let x7v = b.sub(N(a_lo), N(b_lo));
    let x7 = b.asr(N(x7v), sh);
    b.store(ot(7), N(x7));

    let w1 = b.sub(N(a_hi), N(b_hi));
    let w1s = b.asr(N(w1), sh);
    let w2 = b.add(N(a_lo), N(b_lo));
    let w2s = b.asr(N(w2), sh);
    let (c_hi, c_lo) = rot(&mut b, w1s, w2s, c5, k7m5, k7p5);
    let x3 = b.asr(N(c_hi), sh);
    b.store(ot(3), N(x3));
    let x5 = b.asr(N(c_lo), sh);
    b.store(ot(5), N(x5));

    kb.description("16 x 8-point 1-D Loeffler-style DCT passes (row + transposed-column pass of the 8x8 2D-FDCT, H.263 encoder)")
        .style(MappingStyle::Dataflow)
        .body(b.finish())
        .build()
        .expect("fdct kernel is valid")
}

/// Sum of absolute differences of the H.263 encoder's motion estimation
/// over a 16×16 block (256 pixel pairs; each PE accumulates four).
///
/// The only kernel with no multiplications — the one that profits most
/// from resource pipelining (paper: 35.7 % on RSP#1) because it enjoys the
/// shorter clock without ever paying multi-cycle multiplication latency.
pub fn sad() -> Kernel {
    let mut kb = KernelBuilder::new("SAD", 64);
    let cur = kb.array("cur", 256);
    let refa = kb.array("ref", 256);
    let partial = kb.array("partial", 64);

    let mut b = DfgBuilder::new();
    let l = b.load_pair(
        AddrExpr::affine(cur, 0, 4, 0, 1),
        AddrExpr::affine(refa, 0, 4, 0, 1),
    );
    let d = b.sub(N(l), P(l));
    let a = b.abs(N(d));
    let acc = b.accum_add(N(a), 0);

    let mut t = DfgBuilder::new();
    t.store(AddrExpr::flat(partial, 0, 1), Operand::Carry(acc));

    kb.steps(4)
        .description("SAD += |cur[p] - ref[p]| over a 16x16 block (H.263 motion estimation)")
        .style(MappingStyle::Lockstep)
        .body(b.finish())
        .tail(t.finish())
        .build()
        .expect("sad kernel is valid")
}

/// Matrix-vector multiplication: 64 multiply-accumulate pairs
/// `y[i] += A[i][j] * x[j]` for an 8×8 matrix (one MAC per element;
/// per-PE partials stored for the sequencer reduction).
pub fn mvm() -> Kernel {
    let mut kb = KernelBuilder::new("MVM", 64);
    let a = kb.array("A", 64);
    let x = kb.array("x", 8);
    let partial = kb.array("partial", 64);

    let mut b = DfgBuilder::new();
    let l = b.load_pair(
        AddrExpr::affine(a, 0, 8, 1, 0),
        AddrExpr::affine(x, 0, 0, 1, 0),
    );
    let m = b.mult(N(l), P(l));
    let acc = b.accum_add(N(m), 0);

    let mut t = DfgBuilder::new();
    t.store(AddrExpr::affine(partial, 0, 8, 1, 0), Operand::Carry(acc));

    kb.elem_divisor(8)
        .description("y[i] += A[i][j]*x[j]  (8x8 matrix-vector multiplication)")
        .style(MappingStyle::Lockstep)
        .body(b.finish())
        .tail(t.finish())
        .build()
        .expect("mvm kernel is valid")
}

/// The multiplication loop of an FFT stage: 32 radix-2 butterflies
/// `t = w * b; (a, b) = (a + t, a - t)` on complex values.
pub fn fft_mult_loop() -> Kernel {
    let mut kb = KernelBuilder::new("FFT", 32);
    let wr = kb.array("wr", 32);
    let wi = kb.array("wi", 32);
    let br = kb.array("br", 32);
    let bi = kb.array("bi", 32);
    let ar = kb.array("ar", 32);
    let ai = kb.array("ai", 32);
    let our = kb.array("out_r", 32);
    let oui = kb.array("out_i", 32);
    let opr = kb.array("out2_r", 32);
    let opi = kb.array("out2_i", 32);

    let mut b = DfgBuilder::new();
    let lw = b.load_pair(AddrExpr::flat(wr, 0, 1), AddrExpr::flat(wi, 0, 1));
    let lb = b.load_pair(AddrExpr::flat(br, 0, 1), AddrExpr::flat(bi, 0, 1));
    let la = b.load_pair(AddrExpr::flat(ar, 0, 1), AddrExpr::flat(ai, 0, 1));

    let m0 = b.mult(N(lw), N(lb)); // wr*br
    let m1 = b.mult(P(lw), P(lb)); // wi*bi
    let m2 = b.mult(N(lw), P(lb)); // wr*bi
    let m3 = b.mult(P(lw), N(lb)); // wi*br
    let tr = b.sub(N(m0), N(m1));
    let ti = b.add(N(m2), N(m3));

    let sum_r = b.add(N(la), N(tr));
    b.store(AddrExpr::flat(our, 0, 1), N(sum_r));
    let sum_i = b.add(P(la), N(ti));
    b.store(AddrExpr::flat(oui, 0, 1), N(sum_i));
    let dif_r = b.sub(N(la), N(tr));
    b.store(AddrExpr::flat(opr, 0, 1), N(dif_r));
    let dif_i = b.sub(P(la), N(ti));
    b.store(AddrExpr::flat(opi, 0, 1), N(dif_i));

    kb.description("radix-2 FFT butterfly multiplication loop: t = w*b; out = a+t; out2 = a-t")
        .style(MappingStyle::Dataflow)
        .body(b.finish())
        .build()
        .expect("fft kernel is valid")
}

/// The five Livermore kernels of Table 4 in row order.
pub fn livermore() -> Vec<Kernel> {
    vec![hydro(), iccg(), tri_diagonal(), inner_product(), state()]
}

/// The four DSP kernels of Table 5 in row order.
pub fn dsp() -> Vec<Kernel> {
    vec![fdct(), sad(), mvm(), fft_mult_loop()]
}

/// All nine evaluated kernels (Tables 3/4/5).
pub fn all() -> Vec<Kernel> {
    let mut v = livermore();
    v.extend(dsp());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, Bindings, MemoryImage};
    use rsp_arch::OpKind;

    #[test]
    fn iteration_counts_match_paper() {
        assert_eq!(hydro().iterations(), 32);
        assert_eq!(iccg().iterations(), 32);
        assert_eq!(tri_diagonal().iterations(), 64);
        assert_eq!(inner_product().iterations(), 128);
        assert_eq!(state().iterations(), 16);
        assert_eq!(mvm().iterations(), 64);
        assert_eq!(fft_mult_loop().iterations(), 32);
        assert_eq!(sad().iterations(), 256);
    }

    #[test]
    fn op_sets_match_table3() {
        use std::collections::BTreeSet;
        let set = |k: &Kernel| k.op_set();
        assert_eq!(set(&hydro()), BTreeSet::from([OpKind::Mult, OpKind::Add]));
        assert_eq!(set(&iccg()), BTreeSet::from([OpKind::Mult, OpKind::Sub]));
        assert_eq!(
            set(&tri_diagonal()),
            BTreeSet::from([OpKind::Mult, OpKind::Sub])
        );
        assert_eq!(
            set(&inner_product()),
            BTreeSet::from([OpKind::Mult, OpKind::Add])
        );
        assert_eq!(set(&state()), BTreeSet::from([OpKind::Mult, OpKind::Add]));
        // 2D-FDCT: mult, shift, add, sub.
        assert_eq!(
            set(&fdct()),
            BTreeSet::from([OpKind::Mult, OpKind::Asr, OpKind::Add, OpKind::Sub])
        );
        // SAD: abs, add (+ the sub inside the absolute difference).
        assert_eq!(
            set(&sad()),
            BTreeSet::from([OpKind::Abs, OpKind::Add, OpKind::Sub])
        );
        assert_eq!(set(&mvm()), BTreeSet::from([OpKind::Mult, OpKind::Add]));
        assert_eq!(
            set(&fft_mult_loop()),
            BTreeSet::from([OpKind::Mult, OpKind::Add, OpKind::Sub])
        );
    }

    #[test]
    fn sad_has_no_multiplications() {
        assert_eq!(sad().total_mults(), 0);
    }

    #[test]
    fn hydro_computes_reference_values() {
        let k = hydro();
        let img = MemoryImage::random(&k, 11);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        // q=5, r=2, t=3.
        for i in 0..32 {
            let expect = 5 + img.read(1, i) * (2 * img.read(0, i + 10) + 3 * img.read(0, i + 11));
            assert_eq!(out.read(2, i), expect, "x[{i}]");
        }
    }

    #[test]
    fn tri_diagonal_computes_reference_values() {
        let k = tri_diagonal();
        let img = MemoryImage::random(&k, 5);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        for i in 0..64 {
            let expect = img.read(2, i) * (img.read(0, i) - img.read(1, i));
            assert_eq!(out.read(3, i), expect);
        }
    }

    #[test]
    fn iccg_computes_reference_values() {
        let k = iccg();
        let img = MemoryImage::random(&k, 6);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        for i in 0..32 {
            let expect = img.read(0, i) - img.read(1, i) * img.read(0, i + 1);
            assert_eq!(out.read(2, i), expect);
        }
    }

    #[test]
    fn inner_product_partials_sum_to_dot_product() {
        let k = inner_product();
        let img = MemoryImage::random(&k, 9);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        let total: i64 = out.array(2).iter().map(|&v| v as i64).sum();
        let expect: i64 = (0..128)
            .map(|i| (img.read(0, i) as i64) * (img.read(1, i) as i64))
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn sad_partials_sum_to_block_sad() {
        let k = sad();
        let img = MemoryImage::random(&k, 4);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        let total: i64 = out.array(2).iter().map(|&v| v as i64).sum();
        let expect: i64 = (0..256)
            .map(|i| (img.read(0, i) - img.read(1, i)).abs() as i64)
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn mvm_partials_reduce_to_matrix_vector_product() {
        let k = mvm();
        let img = MemoryImage::random(&k, 8);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        for i in 0..8 {
            let row: i64 = (0..8).map(|j| out.read(2, 8 * i + j) as i64).sum();
            let expect: i64 = (0..8)
                .map(|j| (img.read(0, 8 * i + j) as i64) * (img.read(1, j) as i64))
                .sum();
            assert_eq!(row, expect, "y[{i}]");
        }
    }

    #[test]
    fn fft_butterfly_reference_values() {
        let k = fft_mult_loop();
        let img = MemoryImage::random(&k, 3);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        for i in 0..32 {
            let (wr, wi) = (img.read(0, i), img.read(1, i));
            let (br, bi) = (img.read(2, i), img.read(3, i));
            let (ar, ai) = (img.read(4, i), img.read(5, i));
            let tr = wr * br - wi * bi;
            let ti = wr * bi + wi * br;
            assert_eq!(out.read(6, i), ar + tr);
            assert_eq!(out.read(7, i), ai + ti);
            assert_eq!(out.read(8, i), ar - tr);
            assert_eq!(out.read(9, i), ai - ti);
        }
    }

    #[test]
    fn fdct_dc_coefficient_is_scaled_sum() {
        let k = fdct();
        let mut img = MemoryImage::zeroed(&k);
        // Pass 0 inputs all ones: DC output = (8 * 181) >> 8 = 5.
        for j in 0..8 {
            img.write(0, j, 1);
        }
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        assert_eq!(out.read(1, 0), (8 * 181) >> 8);
        // AC coefficients of a constant signal vanish.
        for c in 1..8 {
            assert_eq!(out.read(1, c), 0, "coef {c}");
        }
    }

    #[test]
    fn matmul_reference_values() {
        let n = 4;
        let k = matmul(n);
        let img = MemoryImage::random(&k, 2);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        for i in 0..n {
            for j in 0..n {
                let dot: i32 = (0..n)
                    .map(|kk| img.read(0, i * n + kk) * img.read(1, kk * n + j))
                    .sum();
                assert_eq!(out.read(2, i * n + j), 3 * dot, "Z[{i},{j}]");
            }
        }
    }

    #[test]
    fn suite_sizes() {
        assert_eq!(livermore().len(), 5);
        assert_eq!(dsp().len(), 4);
        assert_eq!(all().len(), 9);
    }

    #[test]
    fn dataflow_kernels_are_single_step() {
        for k in all() {
            if k.style() == MappingStyle::Dataflow {
                assert_eq!(k.steps(), 1, "{}", k.name());
                assert!(k.tail().is_none(), "{}", k.name());
            }
        }
    }

    #[test]
    fn state_computes_reference_values() {
        let k = state();
        let img = MemoryImage::random(&k, 12);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        let (r, t) = (2i64, 3i64);
        for kk in 0..16usize {
            let u = |o: usize| img.read(0, kk + o) as i64;
            let z = img.read(1, kk) as i64;
            let y = img.read(1, kk + 16) as i64;
            let expect = u(0)
                + r * (z + r * y)
                + t * (u(3) + r * (u(2) + r * u(1)) + t * (u(6) + r * (u(5) + r * u(4))));
            assert_eq!(out.read(2, kk) as i64, expect, "x[{kk}]");
        }
    }
}
