//! Error type for kernel construction and validation.

use std::error::Error;
use std::fmt;

/// Errors raised while building or validating a [`Kernel`](crate::Kernel).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// An operand references a node that does not precede it.
    ForwardReference {
        /// Index of the offending node.
        node: usize,
        /// The referenced (later or equal) node index.
        referenced: usize,
    },
    /// A `Pair` operand references a node that is not a dual load.
    BadPair {
        /// Index of the offending node.
        node: usize,
        /// The referenced node index.
        referenced: usize,
    },
    /// An operand count does not match the operation's arity.
    BadArity {
        /// Index of the offending node.
        node: usize,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        actual: usize,
    },
    /// A memory operation is missing its address, or a non-memory
    /// operation carries one.
    BadAddress {
        /// Index of the offending node.
        node: usize,
    },
    /// An address expression references an undeclared array.
    UnknownArray {
        /// The out-of-range array index.
        array: usize,
    },
    /// An operand references an undeclared parameter.
    UnknownParam {
        /// The out-of-range parameter index.
        param: usize,
    },
    /// A computed address falls outside its array for some (element, step).
    AddressOutOfBounds {
        /// The array index.
        array: usize,
        /// The offending address.
        addr: i64,
        /// Element index where it occurs.
        element: usize,
        /// Step index where it occurs.
        step: usize,
    },
    /// A `Carry` operand appeared in the body (it is only valid in the
    /// tail), or references an out-of-range body node.
    BadCarry {
        /// Index of the offending node.
        node: usize,
    },
    /// An `Accum` operand appeared in the tail or references an
    /// out-of-range body node.
    BadAccum {
        /// Index of the offending node.
        node: usize,
    },
    /// The kernel has zero elements or zero steps.
    EmptyIteration,
    /// The kernel body is empty.
    EmptyBody,
    /// The dataflow mapping style requires a single-step kernel without
    /// accumulators or tail.
    DataflowShape,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::ForwardReference { node, referenced } => {
                write!(
                    f,
                    "node {node} references node {referenced} which does not precede it"
                )
            }
            KernelError::BadPair { node, referenced } => {
                write!(f, "node {node} takes the pair output of node {referenced} which is not a dual load")
            }
            KernelError::BadArity {
                node,
                expected,
                actual,
            } => write!(f, "node {node} has {actual} operands, expected {expected}"),
            KernelError::BadAddress { node } => {
                write!(
                    f,
                    "node {node} has an address mismatch for its operation kind"
                )
            }
            KernelError::UnknownArray { array } => write!(f, "array index {array} is undeclared"),
            KernelError::UnknownParam { param } => {
                write!(f, "parameter index {param} is undeclared")
            }
            KernelError::AddressOutOfBounds {
                array,
                addr,
                element,
                step,
            } => write!(
                f,
                "address {addr} into array {array} out of bounds at element {element}, step {step}"
            ),
            KernelError::BadCarry { node } => {
                write!(f, "node {node} has an invalid carry operand")
            }
            KernelError::BadAccum { node } => {
                write!(f, "node {node} has an invalid accumulator operand")
            }
            KernelError::EmptyIteration => write!(f, "kernel must have >= 1 element and step"),
            KernelError::EmptyBody => write!(f, "kernel body has no nodes"),
            KernelError::DataflowShape => write!(
                f,
                "dataflow mapping requires a single-step body without accumulators or tail"
            ),
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_nonempty() {
        let errs: Vec<KernelError> = vec![
            KernelError::ForwardReference {
                node: 1,
                referenced: 2,
            },
            KernelError::BadPair {
                node: 0,
                referenced: 0,
            },
            KernelError::BadArity {
                node: 0,
                expected: 2,
                actual: 1,
            },
            KernelError::BadAddress { node: 3 },
            KernelError::UnknownArray { array: 9 },
            KernelError::UnknownParam { param: 4 },
            KernelError::AddressOutOfBounds {
                array: 0,
                addr: -1,
                element: 0,
                step: 0,
            },
            KernelError::BadCarry { node: 0 },
            KernelError::BadAccum { node: 0 },
            KernelError::EmptyIteration,
            KernelError::EmptyBody,
            KernelError::DataflowShape,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
