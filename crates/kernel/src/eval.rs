//! Reference (software) execution of kernels.
//!
//! The evaluator computes the architecturally-visible result of a kernel —
//! the final memory image — directly from the DFG semantics, without any
//! notion of PEs, cycles, or buses. The cycle-accurate simulator
//! (`rsp-sim`) must produce bit-identical memory for every legal schedule;
//! that equivalence is the main functional-correctness oracle of the whole
//! reproduction.
//!
//! # Arithmetic semantics
//!
//! The datapath is 16 bits wide with a 16×16 array multiplier producing a
//! 2n-bit product (Fig. 4). We model values as `i32`:
//!
//! * `Mult` multiplies the *low 16 bits* (sign-extended) of each operand
//!   and keeps the full 32-bit product — exactly the array multiplier.
//! * ALU and shift operations use wrapping 32-bit arithmetic (the
//!   accumulator view of the datapath); shift amounts are masked to 4 bits
//!   (a 16-bit barrel shifter).
//!
//! These rules are shared by the evaluator and the simulator via
//! [`apply_op`].

use crate::dfg::{Dfg, Operand};
use crate::error::KernelError;
use crate::kernel::Kernel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsp_arch::OpKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The contents of data memory: one `Vec<i32>` per declared array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryImage {
    arrays: Vec<Vec<i32>>,
}

impl MemoryImage {
    /// A zero-filled image matching a kernel's array declarations.
    pub fn zeroed(kernel: &Kernel) -> Self {
        Self {
            arrays: kernel.arrays().iter().map(|a| vec![0; a.len]).collect(),
        }
    }

    /// A deterministic pseudo-random image with small values (±63) so that
    /// repeated multiplications stay far from overflow.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_kernel::{suite, MemoryImage};
    /// let k = suite::inner_product();
    /// let img = MemoryImage::random(&k, 42);
    /// assert_eq!(img, MemoryImage::random(&k, 42)); // reproducible
    /// ```
    pub fn random(kernel: &Kernel, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            arrays: kernel
                .arrays()
                .iter()
                .map(|a| (0..a.len).map(|_| rng.gen_range(-63..=63)).collect())
                .collect(),
        }
    }

    /// Number of arrays.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }

    /// Read a word.
    ///
    /// # Panics
    ///
    /// Panics if the array index or address is out of range (kernel
    /// validation guarantees in-range addresses for validated kernels).
    pub fn read(&self, array: usize, addr: usize) -> i32 {
        self.arrays[array][addr]
    }

    /// Write a word.
    ///
    /// # Panics
    ///
    /// Panics if the array index or address is out of range.
    pub fn write(&mut self, array: usize, addr: usize, value: i32) {
        self.arrays[array][addr] = value;
    }

    /// The full contents of one array.
    pub fn array(&self, array: usize) -> &[i32] {
        &self.arrays[array]
    }
}

fn low16(x: i32) -> i32 {
    x as i16 as i32
}

/// Applies the architectural semantics of a binary/unary operation.
///
/// For unary operations `b` is ignored. `Load`, `Store`, `Mov`, and `Nop`
/// pass `a` through (memory movement is handled by the caller).
///
/// # Examples
///
/// ```
/// use rsp_arch::OpKind;
/// use rsp_kernel::apply_op;
///
/// assert_eq!(apply_op(OpKind::Mult, 300, 300), 90_000); // full 32-bit product
/// assert_eq!(apply_op(OpKind::Abs, -5, 0), 5);
/// assert_eq!(apply_op(OpKind::Shl, 1, 4), 16);
/// ```
pub fn apply_op(op: OpKind, a: i32, b: i32) -> i32 {
    let sh = (b & 0xF) as u32;
    match op {
        OpKind::Add => a.wrapping_add(b),
        OpKind::Sub => a.wrapping_sub(b),
        OpKind::Abs => a.wrapping_abs(),
        OpKind::Min => a.min(b),
        OpKind::Max => a.max(b),
        OpKind::And => a & b,
        OpKind::Or => a | b,
        OpKind::Xor => a ^ b,
        OpKind::Shl => a.wrapping_shl(sh),
        OpKind::Shr => ((a as u32) >> sh) as i32,
        OpKind::Asr => a >> sh,
        OpKind::Mult => low16(a).wrapping_mul(low16(b)),
        OpKind::Load | OpKind::Store | OpKind::Mov | OpKind::Nop => a,
    }
}

/// Scalar parameter bindings for one evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bindings {
    values: Vec<i32>,
}

impl Bindings {
    /// The kernel's declared defaults.
    pub fn defaults(kernel: &Kernel) -> Self {
        Self {
            values: kernel.params().iter().map(|p| p.default).collect(),
        }
    }

    /// Overrides one parameter by index.
    ///
    /// # Panics
    ///
    /// Panics if `param` is out of range.
    pub fn set(&mut self, param: usize, value: i32) -> &mut Self {
        self.values[param] = value;
        self
    }

    /// The bound value of a parameter.
    pub fn get(&self, param: usize) -> i32 {
        self.values[param]
    }
}

/// Evaluates `kernel` on `input`, returning the final memory image.
///
/// Loads observe `input` (snapshot semantics); stores accumulate into the
/// returned image, which starts as a copy of `input`.
///
/// # Errors
///
/// Returns [`KernelError`] only for kernels that bypassed validation (the
/// public constructors always validate, making this effectively
/// infallible for library users).
///
/// # Examples
///
/// ```
/// use rsp_kernel::{evaluate, suite, Bindings, MemoryImage};
///
/// let k = suite::sad();
/// let input = MemoryImage::random(&k, 7);
/// let out = evaluate(&k, &input, &Bindings::defaults(&k))?;
/// // SAD partials are non-negative sums of absolute differences.
/// let partials = out.array(2);
/// assert!(partials.iter().all(|&v| v >= 0));
/// # Ok::<(), rsp_kernel::KernelError>(())
/// ```
pub fn evaluate(
    kernel: &Kernel,
    input: &MemoryImage,
    bindings: &Bindings,
) -> Result<MemoryImage, KernelError> {
    let mut out = input.clone();
    for e in 0..kernel.elements() {
        let mut prev: HashMap<u32, i32> = HashMap::new();
        let mut last = Vec::new();
        for s in 0..kernel.steps() {
            last = eval_dfg(
                kernel.body(),
                kernel,
                input,
                &mut out,
                bindings,
                e,
                s,
                &prev,
                &[],
            )?;
            prev = last
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as u32, v))
                .collect();
        }
        if let Some(tail) = kernel.tail() {
            eval_dfg(
                tail,
                kernel,
                input,
                &mut out,
                bindings,
                e,
                kernel.steps() - 1,
                &HashMap::new(),
                &last,
            )?;
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn eval_dfg(
    dfg: &Dfg,
    kernel: &Kernel,
    input: &MemoryImage,
    out: &mut MemoryImage,
    bindings: &Bindings,
    e: usize,
    s: usize,
    prev_step: &HashMap<u32, i32>,
    carries: &[i32],
) -> Result<Vec<i32>, KernelError> {
    let d = kernel.elem_divisor();
    let mut vals: Vec<i32> = Vec::with_capacity(dfg.len());
    let mut pair_vals: Vec<i32> = Vec::with_capacity(dfg.len());
    for (id, n) in dfg.iter() {
        let read = |o: &Operand, vals: &Vec<i32>| -> i32 {
            match *o {
                Operand::Node(p) => vals[p.index()],
                Operand::Pair(p) => pair_vals[p.index()],
                Operand::Const(c) => c,
                Operand::Param(p) => bindings.get(p.index()),
                Operand::Accum { node, init } => prev_step.get(&(node.0)).copied().unwrap_or(init),
                Operand::Carry(c) => carries[c.index()],
            }
        };
        let (v, pv) = match n.op() {
            OpKind::Load => {
                let a = n.addr().expect("validated load has addr");
                let v = input.read(a.array.index(), a.eval(e, s, d) as usize);
                let pv = n
                    .addr2()
                    .map(|a2| input.read(a2.array.index(), a2.eval(e, s, d) as usize))
                    .unwrap_or(0);
                (v, pv)
            }
            OpKind::Store => {
                let a = n.addr().expect("validated store has addr");
                let v = read(&n.operands()[0], &vals);
                out.write(a.array.index(), a.eval(e, s, d) as usize, v);
                (v, 0)
            }
            op => {
                let a = n.operands().first().map(|o| read(o, &vals)).unwrap_or(0);
                let b = n.operands().get(1).map(|o| read(o, &vals)).unwrap_or(0);
                (apply_op(op, a, b), 0)
            }
        };
        debug_assert_eq!(id.index(), vals.len());
        vals.push(v);
        pair_vals.push(pv);
    }
    Ok(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::{AddrExpr, DfgBuilder, Operand};
    use crate::kernel::KernelBuilder;

    fn saxpy_kernel(n: usize) -> Kernel {
        let mut kb = KernelBuilder::new("saxpy", n);
        let x = kb.array("x", n);
        let y = kb.array("y", n);
        let out = kb.array("out", n);
        let a = kb.param("a", 3);
        let mut b = DfgBuilder::new();
        let l = b.load_pair(AddrExpr::flat(x, 0, 1), AddrExpr::flat(y, 0, 1));
        let m = b.mult(Operand::Node(l), Operand::Param(a));
        let sum = b.add(Operand::Node(m), Operand::Pair(l));
        b.store(AddrExpr::flat(out, 0, 1), Operand::Node(sum));
        kb.body(b.finish()).build().unwrap()
    }

    #[test]
    fn saxpy_matches_scalar_model() {
        let k = saxpy_kernel(16);
        let img = MemoryImage::random(&k, 1);
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        for i in 0..16 {
            let expect = 3 * img.read(0, i) + img.read(1, i);
            assert_eq!(out.read(2, i), expect, "element {i}");
        }
    }

    #[test]
    fn param_override_changes_result() {
        let k = saxpy_kernel(4);
        let img = MemoryImage::random(&k, 2);
        let mut b = Bindings::defaults(&k);
        b.set(0, 10);
        let out = evaluate(&k, &img, &b).unwrap();
        assert_eq!(out.read(2, 0), 10 * img.read(0, 0) + img.read(1, 0));
    }

    #[test]
    fn accumulation_across_steps() {
        // sum over 4 steps of x[4e + s], stored by tail.
        let mut kb = KernelBuilder::new("acc", 2);
        let x = kb.array("x", 8);
        let out = kb.array("out", 2);
        let mut b = DfgBuilder::new();
        let l = b.load(AddrExpr::affine(x, 0, 4, 0, 1));
        let acc = b.accum_add(Operand::Node(l), 0);
        let mut t = DfgBuilder::new();
        t.store(AddrExpr::flat(out, 0, 1), Operand::Carry(acc));
        let k = kb
            .steps(4)
            .body(b.finish())
            .tail(t.finish())
            .build()
            .unwrap();

        let mut img = MemoryImage::zeroed(&k);
        for i in 0..8 {
            img.write(0, i, i as i32 + 1);
        }
        let res = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        assert_eq!(res.read(1, 0), 1 + 2 + 3 + 4);
        assert_eq!(res.read(1, 1), 5 + 6 + 7 + 8);
    }

    #[test]
    fn mult_uses_low_16_bits() {
        // 0x1_0005 low 16 = 5.
        assert_eq!(apply_op(OpKind::Mult, 0x10005, 3), 15);
        assert_eq!(apply_op(OpKind::Mult, -2, 3), -6);
        // Full product exceeds 16 bits and is kept.
        assert_eq!(apply_op(OpKind::Mult, 1000, 1000), 1_000_000);
    }

    #[test]
    fn shifts_mask_amount() {
        assert_eq!(apply_op(OpKind::Shl, 1, 16), 1); // 16 & 0xF == 0
        assert_eq!(apply_op(OpKind::Asr, -16, 2), -4);
        // 28 & 0xF == 12, so the logical shift keeps the top 20 bits clear.
        assert_eq!(apply_op(OpKind::Shr, -1, 28), 0x000F_FFFF);
    }

    #[test]
    fn min_max_and_bitwise() {
        assert_eq!(apply_op(OpKind::Min, 3, -7), -7);
        assert_eq!(apply_op(OpKind::Max, 3, -7), 3);
        assert_eq!(apply_op(OpKind::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(apply_op(OpKind::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(apply_op(OpKind::Xor, 0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn zeroed_image_shape() {
        let k = saxpy_kernel(4);
        let img = MemoryImage::zeroed(&k);
        assert_eq!(img.array_count(), 3);
        assert_eq!(img.array(0).len(), 4);
        assert!(img.array(0).iter().all(|&v| v == 0));
    }

    #[test]
    fn random_image_within_range() {
        let k = saxpy_kernel(64);
        let img = MemoryImage::random(&k, 3);
        for a in 0..3 {
            assert!(img.array(a).iter().all(|&v| (-63..=63).contains(&v)));
        }
    }

    #[test]
    fn stores_do_not_affect_loads() {
        // Kernel that loads x[e] and stores 2*x[e] back into x[e]: snapshot
        // semantics mean every load sees the original value.
        let mut kb = KernelBuilder::new("inplace", 4);
        let x = kb.array("x", 4);
        let mut b = DfgBuilder::new();
        let l = b.load(AddrExpr::flat(x, 0, 1));
        let dbl = b.add(Operand::Node(l), Operand::Node(l));
        b.store(AddrExpr::flat(x, 0, 1), Operand::Node(dbl));
        let k = kb.body(b.finish()).build().unwrap();

        let mut img = MemoryImage::zeroed(&k);
        for i in 0..4 {
            img.write(0, i, 5);
        }
        let out = evaluate(&k, &img, &Bindings::defaults(&k)).unwrap();
        assert!(out.array(0).iter().all(|&v| v == 10));
    }
}
