//! Loop kernels: an element/step iteration model around DFG bodies.
//!
//! A kernel executes `elements × steps` body instances plus one optional
//! tail per element:
//!
//! * **Elements** are independent units of work (one output value or one
//!   pass of a transform). The mapper places each element on one PE
//!   (lockstep style, as the matrix multiplication of Fig. 2) or spreads an
//!   element's operations over a row of PEs (dataflow style).
//! * **Steps** repeat the body sequentially on the same PE; PE-local
//!   accumulator registers ([`Operand::Accum`]) carry values between steps
//!   (the `+` chain of Fig. 2's sum of products).
//! * The **tail** runs once per element after the last step (e.g. the
//!   `C ×` scaling and the `St` store of eq. (1)).
//!
//! Memory reads use snapshot semantics: every load observes the initial
//! memory image, every store lands in the final image. The paper's kernels
//! never read their own output in-flight, so this matches their behaviour
//! while keeping mapped execution order-independent across elements.

#[cfg(test)]
use crate::dfg::NodeId;
use crate::dfg::{AddrExpr, ArrayId, Dfg, Operand, ParamId};
use crate::error::KernelError;
use rsp_arch::OpKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A named memory array available to a kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Human-readable array name (e.g. `"x"`, `"z"`).
    pub name: String,
    /// Length in 16-bit words.
    pub len: usize,
}

/// A named loop-invariant scalar parameter with its default value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamDecl {
    /// Human-readable parameter name (e.g. `"r"`, `"q"`).
    pub name: String,
    /// Default value used when no binding is supplied.
    pub default: i32,
}

/// Preferred mapping style, a hint consumed by the mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappingStyle {
    /// One element per PE; all PEs of a column run the body in lockstep,
    /// columns staggered by one cycle (the paper's Fig. 2 discipline).
    Lockstep,
    /// One element per row; the element's operations are spread over the
    /// PEs of the row and modulo-pipelined (used for bodies too large or
    /// too multiplication-dense for a single PE).
    Dataflow,
}

impl fmt::Display for MappingStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingStyle::Lockstep => f.write_str("lockstep"),
            MappingStyle::Dataflow => f.write_str("dataflow"),
        }
    }
}

/// A validated loop kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    name: String,
    description: String,
    body: Dfg,
    tail: Option<Dfg>,
    elements: usize,
    steps: usize,
    elem_divisor: usize,
    arrays: Vec<ArrayDecl>,
    params: Vec<ParamDecl>,
    style: MappingStyle,
}

/// Builder for [`Kernel`] values; the terminal [`build`](KernelBuilder::build)
/// method validates the whole kernel.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    description: String,
    body: Option<Dfg>,
    tail: Option<Dfg>,
    elements: usize,
    steps: usize,
    elem_divisor: usize,
    arrays: Vec<ArrayDecl>,
    params: Vec<ParamDecl>,
    style: MappingStyle,
}

impl KernelBuilder {
    /// Starts a kernel named `name` with `elements` independent elements.
    pub fn new(name: impl Into<String>, elements: usize) -> Self {
        Self {
            name: name.into(),
            description: String::new(),
            body: None,
            tail: None,
            elements,
            steps: 1,
            elem_divisor: 1,
            arrays: Vec::new(),
            params: Vec::new(),
            style: MappingStyle::Lockstep,
        }
    }

    /// Sets the human-readable description (typically the source loop).
    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    /// Sets sequential steps per element (default 1).
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Sets the element divisor `d` used by [`AddrExpr`] evaluation
    /// (default 1 — flat element space).
    pub fn elem_divisor(mut self, d: usize) -> Self {
        self.elem_divisor = d;
        self
    }

    /// Declares a memory array and returns its id.
    pub fn array(&mut self, name: impl Into<String>, len: usize) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            name: name.into(),
            len,
        });
        id
    }

    /// Declares a scalar parameter and returns its id.
    pub fn param(&mut self, name: impl Into<String>, default: i32) -> ParamId {
        let id = ParamId(self.params.len() as u32);
        self.params.push(ParamDecl {
            name: name.into(),
            default,
        });
        id
    }

    /// Sets the body graph.
    pub fn body(mut self, body: Dfg) -> Self {
        self.body = Some(body);
        self
    }

    /// Sets the per-element tail graph.
    pub fn tail(mut self, tail: Dfg) -> Self {
        self.tail = Some(tail);
        self
    }

    /// Sets the preferred mapping style (default lockstep).
    pub fn style(mut self, style: MappingStyle) -> Self {
        self.style = style;
        self
    }

    /// Validates and builds the kernel.
    ///
    /// # Errors
    ///
    /// Any [`KernelError`] describing the first violated invariant: operand
    /// references, arities, address presence and bounds, accumulator/carry
    /// placement, and dataflow-shape constraints.
    pub fn build(self) -> Result<Kernel, KernelError> {
        let body = self.body.ok_or(KernelError::EmptyBody)?;
        let kernel = Kernel {
            name: self.name,
            description: self.description,
            body,
            tail: self.tail,
            elements: self.elements,
            steps: self.steps,
            elem_divisor: self.elem_divisor.max(1),
            arrays: self.arrays,
            params: self.params,
            style: self.style,
        };
        kernel.validate()?;
        Ok(kernel)
    }
}

impl Kernel {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable description (usually the source loop).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The body graph executed every step.
    pub fn body(&self) -> &Dfg {
        &self.body
    }

    /// The optional per-element tail graph.
    pub fn tail(&self) -> Option<&Dfg> {
        self.tail.as_ref()
    }

    /// Number of independent elements.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Sequential steps per element.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Total body iterations (`elements × steps`) — the paper's kernel
    /// iteration count (e.g. `Hydro(32†)`).
    pub fn iterations(&self) -> usize {
        self.elements * self.steps
    }

    /// Element divisor `d` for address evaluation.
    pub fn elem_divisor(&self) -> usize {
        self.elem_divisor
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Declared parameters.
    pub fn params(&self) -> &[ParamDecl] {
        &self.params
    }

    /// Preferred mapping style.
    pub fn style(&self) -> MappingStyle {
        self.style
    }

    /// The set of operation kinds used (Table 3's "Operation set"),
    /// excluding loads/stores/moves which every kernel uses implicitly.
    pub fn op_set(&self) -> BTreeSet<OpKind> {
        let mut set = BTreeSet::new();
        let mut scan = |dfg: &Dfg| {
            for (_, n) in dfg.iter() {
                if !matches!(
                    n.op(),
                    OpKind::Load | OpKind::Store | OpKind::Mov | OpKind::Nop
                ) {
                    set.insert(n.op());
                }
            }
        };
        scan(&self.body);
        if let Some(t) = &self.tail {
            scan(t);
        }
        set
    }

    /// Multiplications per body instance.
    pub fn body_mults(&self) -> usize {
        self.body.mult_count()
    }

    /// Total multiplications across the whole kernel run.
    pub fn total_mults(&self) -> usize {
        self.body.mult_count() * self.iterations()
            + self.tail.as_ref().map_or(0, |t| t.mult_count()) * self.elements
    }

    /// Total scheduled operations across the whole kernel run.
    pub fn total_ops(&self) -> usize {
        self.body.len() * self.iterations()
            + self.tail.as_ref().map_or(0, |t| t.len()) * self.elements
    }

    fn validate(&self) -> Result<(), KernelError> {
        if self.elements == 0 || self.steps == 0 {
            return Err(KernelError::EmptyIteration);
        }
        if self.body.is_empty() {
            return Err(KernelError::EmptyBody);
        }
        self.validate_dfg(&self.body, false)?;
        if let Some(tail) = &self.tail {
            self.validate_dfg(tail, true)?;
        }
        if self.style == MappingStyle::Dataflow {
            let has_accum = self.body.iter().any(|(_, n)| {
                n.operands()
                    .iter()
                    .any(|o| matches!(o, Operand::Accum { .. }))
            });
            if self.steps != 1 || self.tail.is_some() || has_accum {
                return Err(KernelError::DataflowShape);
            }
        }
        Ok(())
    }

    fn validate_dfg(&self, dfg: &Dfg, is_tail: bool) -> Result<(), KernelError> {
        for (id, n) in dfg.iter() {
            let idx = id.index();
            // Arity (loads/stores carry value operands per OpKind::arity).
            let expected = n.op().arity();
            if n.operands().len() != expected {
                return Err(KernelError::BadArity {
                    node: idx,
                    expected,
                    actual: n.operands().len(),
                });
            }
            // Address presence.
            match n.op() {
                OpKind::Load | OpKind::Store => {
                    if n.addr().is_none() {
                        return Err(KernelError::BadAddress { node: idx });
                    }
                    if n.op() == OpKind::Store && n.addr2().is_some() {
                        return Err(KernelError::BadAddress { node: idx });
                    }
                }
                _ => {
                    if n.addr().is_some() || n.addr2().is_some() {
                        return Err(KernelError::BadAddress { node: idx });
                    }
                }
            }
            // Operand references.
            for opnd in n.operands() {
                match *opnd {
                    Operand::Node(p) => {
                        if p.index() >= idx {
                            return Err(KernelError::ForwardReference {
                                node: idx,
                                referenced: p.index(),
                            });
                        }
                    }
                    Operand::Pair(p) => {
                        if p.index() >= idx {
                            return Err(KernelError::ForwardReference {
                                node: idx,
                                referenced: p.index(),
                            });
                        }
                        if !dfg.node(p).is_dual_load() {
                            return Err(KernelError::BadPair {
                                node: idx,
                                referenced: p.index(),
                            });
                        }
                    }
                    Operand::Const(_) => {}
                    Operand::Param(p) => {
                        if p.index() >= self.params.len() {
                            return Err(KernelError::UnknownParam { param: p.index() });
                        }
                    }
                    Operand::Accum { node, .. } => {
                        if is_tail {
                            return Err(KernelError::BadAccum { node: idx });
                        }
                        if node.index() >= self.body.len() {
                            return Err(KernelError::BadAccum { node: idx });
                        }
                    }
                    Operand::Carry(c) => {
                        if !is_tail {
                            return Err(KernelError::BadCarry { node: idx });
                        }
                        if c.index() >= self.body.len() {
                            return Err(KernelError::BadCarry { node: idx });
                        }
                    }
                }
            }
            // Address bounds over the full iteration space.
            for a in [n.addr(), n.addr2()].into_iter().flatten() {
                self.validate_addr(a, idx, is_tail)?;
            }
        }
        Ok(())
    }

    fn validate_addr(&self, a: &AddrExpr, node: usize, is_tail: bool) -> Result<(), KernelError> {
        let arr = self
            .arrays
            .get(a.array.index())
            .ok_or(KernelError::UnknownArray {
                array: a.array.index(),
            })?;
        let steps = if is_tail { 1 } else { self.steps };
        for e in 0..self.elements {
            for s in 0..steps {
                // Tail addresses evaluate at the last step index.
                let s_eff = if is_tail { self.steps - 1 } else { s };
                let addr = a.eval(e, s_eff, self.elem_divisor);
                if addr < 0 || addr as usize >= arr.len {
                    return Err(KernelError::AddressOutOfBounds {
                        array: a.array.index(),
                        addr,
                        element: e,
                        step: s_eff,
                    });
                }
            }
        }
        let _ = node;
        Ok(())
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} elements x {} steps, {} body ops, {} style)",
            self.name,
            self.elements,
            self.steps,
            self.body.len(),
            self.style
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::DfgBuilder;

    fn simple_kernel() -> Kernel {
        let mut kb = KernelBuilder::new("saxpy", 8);
        let x = kb.array("x", 8);
        let y = kb.array("y", 8);
        let out = kb.array("out", 8);
        let a = kb.param("a", 3);
        let mut b = DfgBuilder::new();
        let l = b.load_pair(AddrExpr::flat(x, 0, 1), AddrExpr::flat(y, 0, 1));
        let m = b.mult(Operand::Node(l), Operand::Param(a));
        let s = b.add(Operand::Node(m), Operand::Pair(l));
        b.store(AddrExpr::flat(out, 0, 1), Operand::Node(s));
        kb.body(b.finish()).build().unwrap()
    }

    #[test]
    fn builds_and_reports_metadata() {
        let k = simple_kernel();
        assert_eq!(k.iterations(), 8);
        assert_eq!(k.body_mults(), 1);
        assert_eq!(k.total_mults(), 8);
        assert_eq!(k.total_ops(), 32);
        let ops = k.op_set();
        assert!(ops.contains(&OpKind::Mult));
        assert!(ops.contains(&OpKind::Add));
        assert!(!ops.contains(&OpKind::Load));
    }

    #[test]
    fn out_of_bounds_address_rejected() {
        let mut kb = KernelBuilder::new("oob", 8);
        let x = kb.array("x", 4); // too small for 8 elements
        let mut b = DfgBuilder::new();
        let l = b.load(AddrExpr::flat(x, 0, 1));
        b.store(AddrExpr::flat(x, 0, 1), Operand::Node(l));
        let err = kb.body(b.finish()).build().unwrap_err();
        assert!(matches!(err, KernelError::AddressOutOfBounds { .. }));
    }

    #[test]
    fn forward_reference_rejected() {
        let mut kb = KernelBuilder::new("fwd", 1);
        let _ = kb.array("x", 1);
        let mut b = DfgBuilder::new();
        // Node 0 references node 1 (not yet defined).
        b.op(
            OpKind::Add,
            vec![Operand::Node(NodeId(1)), Operand::Const(0)],
        );
        b.op(OpKind::Abs, vec![Operand::Const(1)]);
        let err = kb.body(b.finish()).build().unwrap_err();
        assert!(matches!(err, KernelError::ForwardReference { .. }));
    }

    #[test]
    fn pair_of_non_dual_load_rejected() {
        let mut kb = KernelBuilder::new("pair", 1);
        let x = kb.array("x", 1);
        let mut b = DfgBuilder::new();
        let l = b.load(AddrExpr::fixed(x, 0));
        b.op(OpKind::Add, vec![Operand::Pair(l), Operand::Const(0)]);
        let err = kb.body(b.finish()).build().unwrap_err();
        assert!(matches!(err, KernelError::BadPair { .. }));
    }

    #[test]
    fn carry_in_body_rejected() {
        let mut kb = KernelBuilder::new("carry", 1);
        let _ = kb.array("x", 1);
        let mut b = DfgBuilder::new();
        b.op(OpKind::Abs, vec![Operand::Carry(NodeId(0))]);
        let err = kb.body(b.finish()).build().unwrap_err();
        assert!(matches!(err, KernelError::BadCarry { .. }));
    }

    #[test]
    fn accum_in_tail_rejected() {
        let mut kb = KernelBuilder::new("acc-tail", 1);
        let x = kb.array("x", 1);
        let mut body = DfgBuilder::new();
        let l = body.load(AddrExpr::fixed(x, 0));
        let mut tail = DfgBuilder::new();
        tail.op(OpKind::Abs, vec![Operand::Accum { node: l, init: 0 }]);
        let err = kb
            .body(body.finish())
            .tail(tail.finish())
            .build()
            .unwrap_err();
        assert!(matches!(err, KernelError::BadAccum { .. }));
    }

    #[test]
    fn dataflow_shape_enforced() {
        let mut kb = KernelBuilder::new("df", 4);
        let x = kb.array("x", 8);
        let mut b = DfgBuilder::new();
        let l = b.load(AddrExpr::flat(x, 0, 1));
        b.accum_add(Operand::Node(l), 0);
        let err = kb
            .steps(2)
            .style(MappingStyle::Dataflow)
            .body(b.finish())
            .build()
            .unwrap_err();
        assert_eq!(err, KernelError::DataflowShape);
    }

    #[test]
    fn bad_arity_rejected() {
        let mut kb = KernelBuilder::new("arity", 1);
        let _ = kb.array("x", 1);
        let mut b = DfgBuilder::new();
        b.op(OpKind::Add, vec![Operand::Const(1)]); // add needs 2
        let err = kb.body(b.finish()).build().unwrap_err();
        assert!(matches!(err, KernelError::BadArity { .. }));
    }

    #[test]
    fn address_on_alu_op_rejected() {
        // Constructing such a node requires going through Node::new, which
        // is crate-private; simulate via a store missing its address
        // instead: loads/stores without an address are impossible through
        // the builder, so check the unknown-array path.
        let kb = KernelBuilder::new("unk", 1);
        let mut b = DfgBuilder::new();
        b.load(AddrExpr::fixed(ArrayId(7), 0));
        let err = kb.body(b.finish()).build().unwrap_err();
        assert!(matches!(err, KernelError::UnknownArray { array: 7 }));
    }

    #[test]
    fn unknown_param_rejected() {
        let mut kb = KernelBuilder::new("unkp", 1);
        let _ = kb.array("x", 1);
        let mut b = DfgBuilder::new();
        b.op(OpKind::Abs, vec![Operand::Param(ParamId(3))]);
        let err = kb.body(b.finish()).build().unwrap_err();
        assert!(matches!(err, KernelError::UnknownParam { param: 3 }));
    }

    #[test]
    fn display_mentions_shape() {
        let k = simple_kernel();
        let s = k.to_string();
        assert!(s.contains("saxpy"));
        assert!(s.contains("8 elements"));
    }
}
