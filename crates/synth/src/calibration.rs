//! Calibration constants of the synthesis model.
//!
//! The paper evaluates RTL with Synplify Pro on a Xilinx Virtex-II 8M-gate
//! FPGA. Neither tool is available here, so `rsp-synth` replaces them with
//! an analytic model whose constants are derived from the paper's own
//! measurements:
//!
//! * Component areas/delays come straight from **Table 1** (they seed the
//!   paper's own eq. (2) estimation, so using them is faithful, not
//!   circular).
//! * Bus-switch area/delay versus switch fan-in, the pipeline-staging
//!   register area, the interconnect margin, and the wire-load growth are
//!   **fitted to Table 2** and documented below with their residual errors
//!   (all rows within ±2 % for delay and ±1.5 % for area).
//!
//! Everything the *design-space exploration* uses is the raw eq. (2) and
//! the structural delay expression — exactly what the paper's flow does
//! with "pre-synthesized architecture components". The fitted constants
//! only matter when quoting Table 2-style absolute numbers.

/// Interconnect/clock margin added on top of the PE critical path to form
/// the array critical path. Base array: 25.6 ns PE + 0.4 ns = 26 ns
/// (Table 2, Base row).
pub const INTERCONNECT_NS: f64 = 0.4;

/// Extra delay of the multiplication result path (2n-bit product selection
/// and truncation muxing) beyond the bare array-multiplier delay:
/// `25.6 = 1.3 (mux) + 19.7 (mult) + 2.5 (shift) + 2.1 (this)`.
pub const MULT_RESULT_OVERHEAD_NS: f64 = 2.1;

/// Register setup/clock-to-q margin charged to each pipeline stage of a
/// pipelined resource.
pub const PIPE_REG_SETUP_NS: f64 = 0.6;

/// Quadratic wire-load coefficient: sharing `f = shr + shc` resources over
/// a row/column bus adds `WIRE_LOAD_NS_PER_PORT2 * f^2` nanoseconds.
/// Fitted to Table 2 rows RS#1..RS#4 (residual < 1 %).
pub const WIRE_LOAD_NS_PER_PORT2: f64 = 0.15;

/// Wire-load attenuation when the shared resource is pipelined: the stage
/// register isolates the return wire, roughly halving the visible load
/// (fitted to RSP#1..RSP#4, residual < 1.6 %).
pub const PIPE_WIRE_FACTOR: f64 = 0.5;

/// Slices freed in the PE beyond the extracted unit itself (result-select
/// muxing that leaves with the multiplier): `910 - 416 - 489 = 5`.
pub const EXTRACTION_GLUE_SLICES: f64 = 5.0;

/// Pipeline-staging register area per bus-switch port (`Reg_area` of
/// eq. (2)); Table 2 shows `RSP#k - RS#k` growing by ~803 slices per
/// config, i.e. ~13.6 slices per PE per routing alternative.
pub const PIPE_REG_SLICES_PER_PORT: f64 = 13.6;

/// Bus-switch area in slices for fan-in 1..=4 (Table 2's SW column),
/// extended linearly beyond fan-in 4.
pub const SWITCH_AREA_SLICES: [f64; 4] = [10.0, 34.0, 55.0, 68.0];

/// Bus-switch area growth per additional port beyond fan-in 4.
pub const SWITCH_AREA_SLOPE: f64 = 13.0;

/// Bus-switch delay in ns for fan-in 1..=4 (Table 2's SW delay column),
/// extended linearly beyond fan-in 4.
pub const SWITCH_DELAY_NS: [f64; 4] = [0.7, 1.2, 1.8, 2.0];

/// Bus-switch delay growth per additional port beyond fan-in 4.
pub const SWITCH_DELAY_SLOPE: f64 = 0.2;

/// Synthesis optimization factor for the unmodified base array: measured
/// `55739 / (64 * 910) = 0.957` (logic trimming across PE boundaries).
pub const SYNTH_FACTOR_BASE: f64 = 0.957;

/// Synthesis optimization factor for shared/pipelined arrays (Table 2
/// RS/RSP rows average 0.92 against raw eq. (2); residuals within 3 %).
pub const SYNTH_FACTOR_SHARED: f64 = 0.92;

/// Bus-switch area for a given fan-in.
///
/// Fan-in 0 (no sharing) costs nothing.
pub fn switch_area_slices(fan_in: usize) -> f64 {
    match fan_in {
        0 => 0.0,
        f @ 1..=4 => SWITCH_AREA_SLICES[f - 1],
        f => SWITCH_AREA_SLICES[3] + SWITCH_AREA_SLOPE * (f - 4) as f64,
    }
}

/// Bus-switch delay for a given fan-in.
pub fn switch_delay_ns(fan_in: usize) -> f64 {
    match fan_in {
        0 => 0.0,
        f @ 1..=4 => SWITCH_DELAY_NS[f - 1],
        f => SWITCH_DELAY_NS[3] + SWITCH_DELAY_SLOPE * (f - 4) as f64,
    }
}

/// Quadratic wire load for `fan_in` shared resources on the sharing buses;
/// halved when the resource is pipelined.
pub fn wire_load_ns(fan_in: usize, pipelined: bool) -> f64 {
    let base = WIRE_LOAD_NS_PER_PORT2 * (fan_in * fan_in) as f64;
    if pipelined {
        base * PIPE_WIRE_FACTOR
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_tables_match_table2() {
        assert_eq!(switch_area_slices(1), 10.0);
        assert_eq!(switch_area_slices(4), 68.0);
        assert_eq!(switch_delay_ns(2), 1.2);
        assert_eq!(switch_delay_ns(3), 1.8);
    }

    #[test]
    fn switch_extrapolates_beyond_four() {
        assert_eq!(switch_area_slices(6), 68.0 + 2.0 * 13.0);
        assert!((switch_delay_ns(5) - 2.2).abs() < 1e-9);
    }

    #[test]
    fn zero_fan_in_is_free() {
        assert_eq!(switch_area_slices(0), 0.0);
        assert_eq!(switch_delay_ns(0), 0.0);
        assert_eq!(wire_load_ns(0, false), 0.0);
    }

    #[test]
    fn wire_load_quadratic_and_halved_by_pipelining() {
        assert!((wire_load_ns(2, false) - 0.6).abs() < 1e-9);
        assert!((wire_load_ns(2, true) - 0.3).abs() < 1e-9);
        assert!(wire_load_ns(4, false) > wire_load_ns(3, false));
    }
}
