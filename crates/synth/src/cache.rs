//! Memoized synthesis reports for design-space exploration.
//!
//! Area and clock reports depend only on the candidate's geometry and
//! [`SharingPlan`] — for the paper's single-group spaces that is the
//! `(kind, shr, shc, stages)` tuple — not on the kernels being explored.
//! Exploration engines therefore share one [`ModelCache`] across all
//! candidates (and across repeated explorations of the same base), so
//! each distinct plan is synthesized exactly once, even when candidate
//! evaluation fans out over threads.

use crate::area::{AreaModel, AreaReport};
use crate::delay::{DelayModel, DelayReport};
use rsp_arch::{ArrayGeometry, RspArchitecture, SharingPlan};
use std::collections::HashMap;
use std::sync::Mutex;

/// Thread-safe memo of [`AreaModel`]/[`DelayModel`] reports keyed by
/// `(geometry, plan)`.
///
/// The cache assumes every queried architecture uses the same base PE
/// design and component library (true within one exploration); geometry
/// participates in the key so multi-geometry flows stay correct.
#[derive(Debug, Default)]
pub struct ModelCache {
    area: AreaModel,
    delay: DelayModel,
    #[allow(clippy::type_complexity)]
    memo: Mutex<HashMap<(ArrayGeometry, SharingPlan), (AreaReport, DelayReport)>>,
}

impl ModelCache {
    /// Cache over the paper's Table 1 models.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache over custom models.
    pub fn with_models(area: AreaModel, delay: DelayModel) -> Self {
        Self {
            area,
            delay,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying area model.
    pub fn area_model(&self) -> &AreaModel {
        &self.area
    }

    /// The underlying delay model.
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay
    }

    /// Both reports for `arch`, computed once per `(geometry, plan)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::presets;
    /// use rsp_synth::ModelCache;
    ///
    /// let cache = ModelCache::new();
    /// let (area, delay) = cache.reports(&presets::rsp2());
    /// assert!(area.satisfies_cost_bound());
    /// assert!(delay.clock_ns < 26.0);
    /// // Identical plan: served from the memo.
    /// assert_eq!(cache.reports(&presets::rsp2()).0, area);
    /// ```
    pub fn reports(&self, arch: &RspArchitecture) -> (AreaReport, DelayReport) {
        let key = (arch.geometry(), arch.plan().clone());
        if let Some(hit) = self.memo.lock().unwrap().get(&key) {
            return *hit;
        }
        // Computed outside the lock: synthesis is the expensive part and
        // duplicate computation on a race is harmless (reports are pure).
        let reports = (self.area.report(arch), self.delay.report(arch));
        self.memo.lock().unwrap().insert(key, reports);
        reports
    }

    /// Number of distinct plans synthesized so far.
    pub fn len(&self) -> usize {
        self.memo.lock().unwrap().len()
    }

    /// Whether nothing has been synthesized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::presets;

    #[test]
    fn memoizes_by_plan() {
        let cache = ModelCache::new();
        for _ in 0..3 {
            cache.reports(&presets::rsp2());
            cache.reports(&presets::rs1());
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reports_match_direct_models() {
        let cache = ModelCache::new();
        for arch in presets::table_architectures() {
            let (a, d) = cache.reports(&arch);
            assert_eq!(a, AreaModel::new().report(&arch));
            assert_eq!(d, DelayModel::new().report(&arch));
        }
    }

    #[test]
    fn geometry_participates_in_key() {
        let cache = ModelCache::new();
        cache.reports(&presets::base_8x8());
        cache.reports(&presets::fig1_4x4());
        assert_eq!(cache.len(), 2);
    }
}
