//! Memoized synthesis reports for design-space exploration.
//!
//! Area and clock reports depend only on the candidate's geometry and
//! [`SharingPlan`] — for the paper's single-group spaces that is the
//! `(kind, shr, shc, stages)` tuple — not on the kernels being explored.
//! Exploration engines therefore share one [`ModelCache`] across all
//! candidates (and across repeated explorations of the same base), so
//! each distinct plan is synthesized exactly once, even when candidate
//! evaluation fans out over threads.

use crate::area::{AreaModel, AreaReport};
use crate::delay::{DelayModel, DelayReport};
use rsp_arch::{ArrayGeometry, RspArchitecture, SharingPlan};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Thread-safe memo of [`AreaModel`]/[`DelayModel`] reports keyed by
/// `(geometry, plan)`.
///
/// The cache assumes every queried architecture uses the same base PE
/// design and component library (true within one exploration); geometry
/// participates in the key so multi-geometry flows stay correct.
#[derive(Debug, Default)]
pub struct ModelCache {
    area: AreaModel,
    delay: DelayModel,
    #[allow(clippy::type_complexity)]
    memo: Mutex<HashMap<(ArrayGeometry, SharingPlan), (AreaReport, DelayReport)>>,
    /// Area-only memo for the fast path ([`ModelCache::area_report`]):
    /// candidate-ordering passes need every plan's area before any plan's
    /// delay, and must not pay for delay synthesis to get it.
    area_memo: Mutex<HashMap<(ArrayGeometry, SharingPlan), AreaReport>>,
    /// Memo hits across [`ModelCache::reports`] and
    /// [`ModelCache::area_report`] — the observable proof that sharing
    /// one cache across explorations (or server requests) actually
    /// avoids re-synthesis.
    hits: AtomicU64,
    /// Queries those two paths answered by synthesizing (cache misses).
    misses: AtomicU64,
}

impl ModelCache {
    /// Cache over the paper's Table 1 models.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache over custom models.
    pub fn with_models(area: AreaModel, delay: DelayModel) -> Self {
        Self {
            area,
            delay,
            memo: Mutex::new(HashMap::new()),
            area_memo: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying area model.
    pub fn area_model(&self) -> &AreaModel {
        &self.area
    }

    /// The underlying delay model.
    pub fn delay_model(&self) -> &DelayModel {
        &self.delay
    }

    /// Both reports for `arch`, computed once per `(geometry, plan)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::presets;
    /// use rsp_synth::ModelCache;
    ///
    /// let cache = ModelCache::new();
    /// let (area, delay) = cache.reports(&presets::rsp2());
    /// assert!(area.satisfies_cost_bound());
    /// assert!(delay.clock_ns < 26.0);
    /// // Identical plan: served from the memo.
    /// assert_eq!(cache.reports(&presets::rsp2()).0, area);
    /// ```
    pub fn reports(&self, arch: &RspArchitecture) -> (AreaReport, DelayReport) {
        let key = (arch.geometry(), arch.plan().clone());
        if let Some(hit) = self.memo.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Computed outside the lock: synthesis is the expensive part and
        // duplicate computation on a race is harmless (reports are pure).
        // An area already synthesized through the fast path is promoted
        // (removed, not copied) into the full memo — the full entry
        // shadows the area memo on every read path, so keeping both
        // would just duplicate the key for the cache's lifetime. The
        // insert+remove happens under the full-memo lock (nesting order
        // memo → area_memo, same as `area_report`'s publish) so a racing
        // fast-path publish cannot resurrect the area entry afterwards.
        let area_hit = self.area_memo.lock().unwrap().get(&key).copied();
        let area = area_hit.unwrap_or_else(|| self.area.report(arch));
        let reports = (area, self.delay.report(arch));
        {
            let mut memo = self.memo.lock().unwrap();
            let mut area_memo = self.area_memo.lock().unwrap();
            area_memo.remove(&key);
            memo.insert(key, reports);
        }
        reports
    }

    /// Area report only — the fast path for passes that need every
    /// candidate's area before (or without) its delay, such as the
    /// exploration engine's area-ordered candidate enumeration. Memoized
    /// separately from [`ModelCache::reports`]; a later full query reuses
    /// the area instead of re-synthesizing it.
    pub fn area_report(&self, arch: &RspArchitecture) -> AreaReport {
        let key = (arch.geometry(), arch.plan().clone());
        if let Some(hit) = self.memo.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.0;
        }
        if let Some(hit) = self.area_memo.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return *hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = self.area.report(arch);
        // Publish under the same memo → area_memo nesting as `reports`'s
        // promotion: if the full report landed while we synthesized, the
        // area entry would only duplicate it, so skip the insert.
        let memo = self.memo.lock().unwrap();
        if !memo.contains_key(&key) {
            self.area_memo.lock().unwrap().insert(key, report);
        }
        report
    }

    /// Admissible lower bound on `arch`'s clock period — the clock-bound
    /// fast path. A plan already holding a full report answers with its
    /// *exact* synthesized clock (the tightest admissible bound there
    /// is); otherwise the structural
    /// [`DelayModel::clock_floor_ns`] floor is computed from the sharing
    /// plan alone, without triggering delay synthesis. Exploration
    /// engines call this before [`ModelCache::reports`] so candidates
    /// whose clock floor already proves them infeasible never pay for
    /// synthesis.
    pub fn clock_floor(&self, arch: &RspArchitecture) -> f64 {
        let key = (arch.geometry(), arch.plan().clone());
        if let Some(hit) = self.memo.lock().unwrap().get(&key) {
            return hit.1.clock_ns;
        }
        self.delay.clock_floor_ns(arch.plan())
    }

    /// Number of distinct plans with *full* (area + delay) reports so
    /// far. Plans touched only through the [`ModelCache::area_report`]
    /// fast path are not counted until a full query promotes them.
    pub fn len(&self) -> usize {
        self.memo.lock().unwrap().len()
    }

    /// Whether no full report has been computed yet (see
    /// [`ModelCache::len`] — area-only entries are not counted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memo hits so far across [`ModelCache::reports`] and
    /// [`ModelCache::area_report`]. A cache shared across repeated
    /// explorations (or concurrent server requests) shows hits growing
    /// while [`ModelCache::len`] stays at the number of distinct plans —
    /// the cross-request reuse proof the serve tests assert.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries answered by synthesizing (approximately one per distinct
    /// plan; a benign race may synthesize a plan twice).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::presets;

    #[test]
    fn memoizes_by_plan() {
        let cache = ModelCache::new();
        for _ in 0..3 {
            cache.reports(&presets::rsp2());
            cache.reports(&presets::rs1());
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reports_match_direct_models() {
        let cache = ModelCache::new();
        for arch in presets::table_architectures() {
            let (a, d) = cache.reports(&arch);
            assert_eq!(a, AreaModel::new().report(&arch));
            assert_eq!(d, DelayModel::new().report(&arch));
        }
    }

    #[test]
    fn area_fast_path_matches_full_reports() {
        let cache = ModelCache::new();
        for arch in presets::table_architectures() {
            // Fast path first, full query second: the area must agree and
            // be served from the area memo, never re-synthesized.
            let fast = cache.area_report(&arch);
            assert_eq!(fast, AreaModel::new().report(&arch));
            let (full, _) = cache.reports(&arch);
            assert_eq!(fast, full);
            // Once the full report exists, the fast path reads it.
            assert_eq!(cache.area_report(&arch), full);
        }
    }

    #[test]
    fn clock_floor_is_admissible_and_tightens_after_synthesis() {
        let cache = ModelCache::new();
        for arch in presets::table_architectures() {
            let floor = cache.clock_floor(&arch);
            let (_, delay) = cache.reports(&arch);
            assert!(
                floor <= delay.clock_ns,
                "{}: floor {} > clock {}",
                arch.name(),
                floor,
                delay.clock_ns
            );
            // Once synthesized, the fast path serves the exact clock.
            assert_eq!(cache.clock_floor(&arch), delay.clock_ns);
        }
    }

    #[test]
    fn hit_and_miss_counters_track_reuse() {
        let cache = ModelCache::new();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        cache.reports(&presets::rsp2());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        cache.reports(&presets::rsp2());
        cache.area_report(&presets::rsp2());
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        // The area fast path is one miss, and the full query it feeds is
        // counted as a miss too (delay still had to be synthesized).
        cache.area_report(&presets::rs1());
        cache.reports(&presets::rs1());
        assert_eq!((cache.hits(), cache.misses()), (2, 3));
    }

    #[test]
    fn geometry_participates_in_key() {
        let cache = ModelCache::new();
        cache.reports(&presets::base_8x8());
        cache.reports(&presets::fig1_4x4());
        assert_eq!(cache.len(), 2);
    }
}
