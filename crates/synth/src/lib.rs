//! # rsp-synth — synthesis model for the RSP CGRA template
//!
//! Stand-in for the paper's Synplify Pro + Xilinx Virtex-II flow: analytic
//! area and critical-path models over a component library.
//!
//! * [`ComponentLibrary::table1`] carries the paper's measured component
//!   costs; [`estimate`] derives them from first principles at any
//!   datapath width.
//! * [`AreaModel`] implements eq. (2) — the paper's own exploration-time
//!   cost estimate — plus a calibrated "synthesized" figure reproducing
//!   Table 2 within a few percent.
//! * [`DelayModel`] computes the array clock: RS architectures pay bus
//!   switch and wire load on the multiplier round trip; RSP architectures
//!   cut the multiplier out of the combinational path entirely (Fig. 5).
//! * [`paper`] holds the published Tables 1–5 for side-by-side comparison.
//!
//! # Examples
//!
//! ```
//! use rsp_arch::presets;
//! use rsp_synth::{AreaModel, DelayModel};
//!
//! let (area, delay) = (AreaModel::new(), DelayModel::new());
//! let rsp1 = presets::rsp1();
//!
//! let a = area.report(&rsp1);
//! let d = delay.report(&rsp1);
//! // RSP#1: ~40 % smaller and ~35 % faster than the base architecture.
//! assert!(a.reduction_pct() > 35.0);
//! assert!(d.reduction_pct() > 30.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod area;
mod cache;
pub mod calibration;
mod components;
mod delay;
pub mod estimate;
pub mod paper;
mod power;

pub use area::{AreaModel, AreaReport};
pub use cache::ModelCache;
pub use components::{ComponentLibrary, ComponentSpec};
pub use delay::{DelayModel, DelayReport, FaultHook, LimitingPath};
pub use power::{ActivityProfile, PowerCoefficients, PowerModel, PowerReport};
