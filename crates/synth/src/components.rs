//! Component library: per-unit area and delay (the paper's Table 1).

use crate::estimate;
use rsp_arch::FuKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Synthesized area and critical-path delay of one component.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Area in Virtex-II slices.
    pub area_slices: f64,
    /// Critical-path delay in nanoseconds.
    pub delay_ns: f64,
}

impl ComponentSpec {
    /// Creates a spec.
    pub fn new(area_slices: f64, delay_ns: f64) -> Self {
        Self {
            area_slices,
            delay_ns,
        }
    }
}

impl fmt::Display for ComponentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} slices / {:.1} ns",
            self.area_slices, self.delay_ns
        )
    }
}

/// Area/delay database for every functional-unit kind, plus the fixed PE
/// overhead (output registers, control) that Table 1 attributes to the PE
/// total beyond its listed components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentLibrary {
    specs: BTreeMap<FuKind, ComponentSpec>,
    /// PE slices not attributable to any listed component
    /// (`910 - (58 + 253 + 416 + 156) = 27`).
    pe_misc_slices: f64,
}

impl ComponentLibrary {
    /// The paper's Table 1 library: 16-bit components synthesized for
    /// Virtex-II.
    ///
    /// | Component        | Slices | Delay (ns) |
    /// |------------------|--------|------------|
    /// | Multiplexer      | 58     | 1.3        |
    /// | ALU              | 253    | 11.5       |
    /// | Array multiplier | 416    | 19.7       |
    /// | Shift logic      | 156    | 2.5        |
    /// | PE (total)       | 910    | 25.6       |
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::FuKind;
    /// use rsp_synth::ComponentLibrary;
    ///
    /// let lib = ComponentLibrary::table1();
    /// assert_eq!(lib.spec(FuKind::Multiplier).area_slices, 416.0);
    /// ```
    pub fn table1() -> Self {
        let mut specs = BTreeMap::new();
        specs.insert(FuKind::Mux, ComponentSpec::new(58.0, 1.3));
        specs.insert(FuKind::Alu, ComponentSpec::new(253.0, 11.5));
        specs.insert(FuKind::Multiplier, ComponentSpec::new(416.0, 19.7));
        specs.insert(FuKind::Shifter, ComponentSpec::new(156.0, 2.5));
        // The memory port is bus logic; Table 1 folds it into PE misc.
        specs.insert(FuKind::MemPort, ComponentSpec::new(0.0, 0.0));
        Self {
            specs,
            pe_misc_slices: 27.0,
        }
    }

    /// A library scaled to an arbitrary datapath width using the
    /// first-principles estimators of [`estimate`], calibrated so that
    /// width 16 reproduces [`ComponentLibrary::table1`] exactly.
    pub fn for_width(width_bits: u32) -> Self {
        let mut specs = BTreeMap::new();
        for fu in FuKind::ALL {
            specs.insert(fu, estimate::component(fu, width_bits));
        }
        Self {
            specs,
            pe_misc_slices: 27.0 * (width_bits as f64 / 16.0),
        }
    }

    /// The spec of one component.
    ///
    /// # Panics
    ///
    /// Panics if the kind is missing — both constructors populate every
    /// kind, so this only fires for hand-rolled libraries.
    pub fn spec(&self, fu: FuKind) -> ComponentSpec {
        self.specs[&fu]
    }

    /// Overrides one component (returns `self` for chaining).
    pub fn with_spec(mut self, fu: FuKind, spec: ComponentSpec) -> Self {
        self.specs.insert(fu, spec);
        self
    }

    /// Fixed PE overhead slices (registers, control).
    pub fn pe_misc_slices(&self) -> f64 {
        self.pe_misc_slices
    }

    /// Total area of a full PE containing `units`.
    pub fn pe_area<I: IntoIterator<Item = FuKind>>(&self, units: I) -> f64 {
        units
            .into_iter()
            .map(|u| self.spec(u).area_slices)
            .sum::<f64>()
            + self.pe_misc_slices
    }
}

impl Default for ComponentLibrary {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pe_total_is_910() {
        let lib = ComponentLibrary::table1();
        let area = lib.pe_area(FuKind::ALL);
        assert!((area - 910.0).abs() < 1e-9, "PE area {area}");
    }

    #[test]
    fn table1_ratios_match_paper() {
        // Table 1 reports each component as a percentage of the PE.
        let lib = ComponentLibrary::table1();
        let pct = |fu: FuKind| 100.0 * lib.spec(fu).area_slices / 910.0;
        assert!((pct(FuKind::Mux) - 6.37).abs() < 0.01);
        assert!((pct(FuKind::Alu) - 27.80).abs() < 0.01);
        assert!((pct(FuKind::Multiplier) - 45.71).abs() < 0.01);
        assert!((pct(FuKind::Shifter) - 17.14).abs() < 0.01);
    }

    #[test]
    fn multiplier_is_area_and_delay_critical() {
        let lib = ComponentLibrary::table1();
        let m = lib.spec(FuKind::Multiplier);
        for fu in [FuKind::Mux, FuKind::Alu, FuKind::Shifter] {
            assert!(m.area_slices > lib.spec(fu).area_slices);
            assert!(m.delay_ns > lib.spec(fu).delay_ns);
        }
    }

    #[test]
    fn width_16_reproduces_table1() {
        let est = ComponentLibrary::for_width(16);
        let t1 = ComponentLibrary::table1();
        for fu in FuKind::ALL {
            let (a, b) = (est.spec(fu), t1.spec(fu));
            assert!(
                (a.area_slices - b.area_slices).abs() < 1e-6,
                "{fu}: {} vs {}",
                a.area_slices,
                b.area_slices
            );
            assert!((a.delay_ns - b.delay_ns).abs() < 1e-6, "{fu}");
        }
    }

    #[test]
    fn override_spec() {
        let lib =
            ComponentLibrary::table1().with_spec(FuKind::Alu, ComponentSpec::new(300.0, 12.0));
        assert_eq!(lib.spec(FuKind::Alu).area_slices, 300.0);
    }

    #[test]
    fn display_shape() {
        let s = ComponentSpec::new(416.0, 19.7).to_string();
        assert!(s.contains("416"));
        assert!(s.contains("19.7"));
    }
}
