//! First-principles component estimators.
//!
//! Structural area/delay models for each functional unit, parameterized by
//! datapath width and calibrated so a 16-bit datapath reproduces the
//! paper's Table 1 exactly. They let the design-space exploration reason
//! about widths the paper never synthesized (e.g. a 32-bit variant of the
//! template) with physically sensible scaling laws:
//!
//! * **Array multiplier** — an `n×n` cell array: area grows with `n²`,
//!   delay with the `2n-2` cell ripple of the carry-save reduction.
//! * **ALU** — bit-sliced with carry acceleration: area grows with `n`,
//!   delay with `log2 n`.
//! * **Barrel shifter** — `log2 n` mux stages of `n` bits: area grows with
//!   `n·log2 n`, delay with `log2 n`.
//! * **Operand multiplexer** — area grows with `n`; delay is set by the
//!   (width-independent) select fan-in.

use crate::components::ComponentSpec;
use rsp_arch::FuKind;

/// Reference datapath width the calibration anchors to.
pub const CAL_WIDTH: f64 = 16.0;

/// Estimates a component at `width_bits`.
///
/// # Panics
///
/// Panics if `width_bits` is zero.
///
/// # Examples
///
/// ```
/// use rsp_arch::FuKind;
/// use rsp_synth::estimate;
///
/// let m16 = estimate::component(FuKind::Multiplier, 16);
/// let m32 = estimate::component(FuKind::Multiplier, 32);
/// // Quadratic area growth for the array multiplier.
/// assert!((m32.area_slices / m16.area_slices - 4.0).abs() < 1e-9);
/// ```
pub fn component(fu: FuKind, width_bits: u32) -> ComponentSpec {
    assert!(width_bits > 0, "datapath width must be non-zero");
    let n = width_bits as f64;
    let r = n / CAL_WIDTH;
    let log_r = (n.log2()) / CAL_WIDTH.log2();
    match fu {
        FuKind::Multiplier => ComponentSpec::new(
            416.0 * r * r,
            19.7 * (2.0 * n - 2.0) / (2.0 * CAL_WIDTH - 2.0),
        ),
        FuKind::Alu => ComponentSpec::new(253.0 * r, 11.5 * log_r),
        FuKind::Shifter => ComponentSpec::new(
            156.0 * (n * n.log2()) / (CAL_WIDTH * CAL_WIDTH.log2()),
            2.5 * log_r,
        ),
        FuKind::Mux => ComponentSpec::new(58.0 * r, 1.3),
        FuKind::MemPort => ComponentSpec::new(0.0, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_16_is_table1() {
        assert_eq!(
            component(FuKind::Multiplier, 16),
            ComponentSpec::new(416.0, 19.7)
        );
        assert_eq!(component(FuKind::Alu, 16), ComponentSpec::new(253.0, 11.5));
        assert_eq!(
            component(FuKind::Shifter, 16),
            ComponentSpec::new(156.0, 2.5)
        );
        assert_eq!(component(FuKind::Mux, 16), ComponentSpec::new(58.0, 1.3));
    }

    #[test]
    fn multiplier_delay_scales_with_cell_ripple() {
        let d32 = component(FuKind::Multiplier, 32).delay_ns;
        // (2*32-2)/(2*16-2) = 62/30.
        assert!((d32 - 19.7 * 62.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn alu_area_linear_delay_logarithmic() {
        let a8 = component(FuKind::Alu, 8);
        let a32 = component(FuKind::Alu, 32);
        assert!((a8.area_slices - 253.0 / 2.0).abs() < 1e-9);
        assert!((a32.delay_ns - 11.5 * 5.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn mux_delay_width_independent() {
        assert_eq!(component(FuKind::Mux, 8).delay_ns, 1.3);
        assert_eq!(component(FuKind::Mux, 64).delay_ns, 1.3);
    }

    #[test]
    fn wider_is_never_smaller() {
        for fu in [
            FuKind::Multiplier,
            FuKind::Alu,
            FuKind::Shifter,
            FuKind::Mux,
        ] {
            let a = component(fu, 16);
            let b = component(fu, 24);
            assert!(b.area_slices >= a.area_slices, "{fu}");
            assert!(b.delay_ns >= a.delay_ns, "{fu}");
        }
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        component(FuKind::Alu, 0);
    }
}
