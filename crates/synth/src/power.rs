//! Activity-based power/energy model — the paper's §6 future work.
//!
//! > "In this paper, we consider only hardware cost and performance but
//! > the domain-specific optimization may also be effective for reducing
//! > power consumption."
//!
//! This module quantifies that conjecture with a deliberately simple,
//! clearly-synthetic model (no power numbers exist in the paper to
//! calibrate against):
//!
//! * **Dynamic energy** — each operation activates its functional unit;
//!   energy per activation scales with the unit's slice count. Operations
//!   routed through a bus switch to a shared resource additionally pay a
//!   transfer toll proportional to the switch size.
//! * **Configuration energy** — every PE reads its configuration cache
//!   each cycle.
//! * **Static energy** — leakage proportional to the synthesized area,
//!   integrated over the execution time (`cycles × clock`).
//!
//! The RSP story follows directly: sharing cuts leakage area, pipelining
//! cuts execution time; both attack the static term, while the dynamic
//! term only grows by the bus-switch toll.

use crate::area::AreaModel;
use crate::components::ComponentLibrary;
use crate::delay::DelayModel;
use rsp_arch::{FuKind, RspArchitecture};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Energy coefficients (synthetic, order-of-magnitude FPGA values;
/// see the module docs for why no calibration target exists).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCoefficients {
    /// Dynamic energy per activation, per slice of the activated unit
    /// (pJ/slice).
    pub dyn_pj_per_slice: f64,
    /// Extra energy per shared-resource transfer, per slice of the bus
    /// switch (pJ/slice).
    pub transfer_pj_per_slice: f64,
    /// Configuration-cache read energy per PE per cycle (pJ).
    pub config_pj_per_pe_cycle: f64,
    /// Leakage power per slice (µW).
    pub static_uw_per_slice: f64,
}

impl Default for PowerCoefficients {
    fn default() -> Self {
        Self {
            dyn_pj_per_slice: 0.02,
            transfer_pj_per_slice: 0.05,
            config_pj_per_pe_cycle: 1.5,
            static_uw_per_slice: 2.0,
        }
    }
}

/// What a kernel execution activated: operation counts per functional
/// unit, shared transfers, and the executed cycle count.
///
/// Build one from a rearranged context with `rsp_core::activity_of`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ActivityProfile {
    /// Operations executed per functional-unit kind.
    pub ops_per_fu: BTreeMap<FuKind, u64>,
    /// Operations routed through bus switches to shared resources.
    pub shared_transfers: u64,
    /// Executed cycles.
    pub cycles: u64,
}

/// Energy breakdown of one kernel execution on one architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Dynamic (switching) energy, pJ.
    pub dynamic_pj: f64,
    /// Bus-switch transfer energy, pJ.
    pub transfer_pj: f64,
    /// Configuration-cache energy, pJ.
    pub config_pj: f64,
    /// Leakage energy over the execution, pJ.
    pub static_pj: f64,
    /// Execution time used for the static term, ns.
    pub exec_ns: f64,
}

impl PowerReport {
    /// Total energy, pJ.
    pub fn total_pj(&self) -> f64 {
        self.dynamic_pj + self.transfer_pj + self.config_pj + self.static_pj
    }

    /// Average power over the execution, mW.
    pub fn average_mw(&self) -> f64 {
        self.total_pj() / self.exec_ns
    }
}

/// The power model.
#[derive(Debug, Clone, Default)]
pub struct PowerModel {
    lib: ComponentLibrary,
    coeffs: PowerCoefficients,
}

impl PowerModel {
    /// Model with default coefficients over the Table 1 library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model with custom coefficients.
    pub fn with_coefficients(coeffs: PowerCoefficients) -> Self {
        Self {
            lib: ComponentLibrary::table1(),
            coeffs,
        }
    }

    /// The coefficients in use.
    pub fn coefficients(&self) -> PowerCoefficients {
        self.coeffs
    }

    /// Energy report for one kernel execution described by `activity` on
    /// `arch`.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::{presets, FuKind};
    /// use rsp_synth::{ActivityProfile, PowerModel};
    ///
    /// let mut activity = ActivityProfile::default();
    /// activity.ops_per_fu.insert(FuKind::Multiplier, 64);
    /// activity.ops_per_fu.insert(FuKind::Alu, 128);
    /// activity.cycles = 20;
    ///
    /// let model = PowerModel::new();
    /// let base = model.report(&presets::base_8x8(), &activity);
    /// let mut shared = activity.clone();
    /// shared.shared_transfers = 64;
    /// let rsp = model.report(&presets::rsp2(), &shared);
    /// // Sharing + pipelining cut leakage area and time: less energy.
    /// assert!(rsp.total_pj() < base.total_pj());
    /// ```
    pub fn report(&self, arch: &RspArchitecture, activity: &ActivityProfile) -> PowerReport {
        let area = AreaModel::with_library(self.lib.clone()).report(arch);
        let delay = DelayModel::with_library(self.lib.clone()).report(arch);
        let exec_ns = activity.cycles as f64 * delay.clock_ns;

        let dynamic_pj: f64 = activity
            .ops_per_fu
            .iter()
            .map(|(fu, count)| {
                *count as f64 * self.coeffs.dyn_pj_per_slice * self.lib.spec(*fu).area_slices
            })
            .sum();

        let transfer_pj = activity.shared_transfers as f64
            * self.coeffs.transfer_pj_per_slice
            * crate::calibration::switch_area_slices(arch.plan().switch_fan_in());

        let config_pj = activity.cycles as f64
            * arch.geometry().pe_count() as f64
            * self.coeffs.config_pj_per_pe_cycle;

        // µW × ns = femtojoule; convert to pJ (×1e-3).
        let static_pj = self.coeffs.static_uw_per_slice * area.synthesized_slices * exec_ns * 1e-3;

        PowerReport {
            dynamic_pj,
            transfer_pj,
            config_pj,
            static_pj,
            exec_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::presets;

    fn sample_activity(transfers: u64) -> ActivityProfile {
        let mut a = ActivityProfile::default();
        a.ops_per_fu.insert(FuKind::Multiplier, 128);
        a.ops_per_fu.insert(FuKind::Alu, 256);
        a.ops_per_fu.insert(FuKind::MemPort, 192);
        a.shared_transfers = transfers;
        a.cycles = 25;
        a
    }

    #[test]
    fn rsp_beats_base_on_energy() {
        let model = PowerModel::new();
        let base = model.report(&presets::base_8x8(), &sample_activity(0));
        let rsp2 = model.report(&presets::rsp2(), &sample_activity(128));
        assert!(rsp2.total_pj() < base.total_pj());
        assert!(rsp2.static_pj < base.static_pj); // less area AND less time
    }

    #[test]
    fn rs_saves_leakage_but_pays_clock() {
        let model = PowerModel::new();
        let base = model.report(&presets::base_8x8(), &sample_activity(0));
        let rs1 = model.report(&presets::rs1(), &sample_activity(128));
        // Less area but longer execution: static term still smaller
        // because the area cut (-42 %) dominates the clock growth (+3 %).
        assert!(rs1.static_pj < base.static_pj);
        // Transfers cost something.
        assert!(rs1.transfer_pj > 0.0);
        assert_eq!(base.transfer_pj, 0.0);
    }

    #[test]
    fn energy_scales_with_activity() {
        let model = PowerModel::new();
        let small = model.report(&presets::base_8x8(), &sample_activity(0));
        let mut big_activity = sample_activity(0);
        for v in big_activity.ops_per_fu.values_mut() {
            *v *= 2;
        }
        let big = model.report(&presets::base_8x8(), &big_activity);
        assert!(big.dynamic_pj > small.dynamic_pj);
        assert_eq!(big.static_pj, small.static_pj); // same cycles
    }

    #[test]
    fn average_power_is_consistent() {
        let model = PowerModel::new();
        let r = model.report(&presets::rsp2(), &sample_activity(64));
        assert!((r.average_mw() * r.exec_ns - r.total_pj()).abs() < 1e-9);
    }

    #[test]
    fn multiplier_ops_cost_more_than_alu_ops() {
        let model = PowerModel::new();
        let mut mult_only = ActivityProfile::default();
        mult_only.ops_per_fu.insert(FuKind::Multiplier, 100);
        mult_only.cycles = 10;
        let mut alu_only = ActivityProfile::default();
        alu_only.ops_per_fu.insert(FuKind::Alu, 100);
        alu_only.cycles = 10;
        let arch = presets::base_8x8();
        assert!(
            model.report(&arch, &mult_only).dynamic_pj > model.report(&arch, &alu_only).dynamic_pj
        );
    }
}
