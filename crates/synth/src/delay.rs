//! Critical-path (clock period) model — the Fig. 5 mechanics.
//!
//! The array clock is the slowest of:
//!
//! * the **PE-internal path**: operand mux → widest local functional unit
//!   → shift logic (Table 1's 25.6 ns for the full PE; 15.3 ns once the
//!   multiplier is extracted or pipelined), plus the interconnect margin;
//! * for each **combinational shared resource** (pure RS): mux → bus
//!   switch → resource (+ result overhead) → shift logic, plus wire load
//!   that grows quadratically with switch fan-in;
//! * for each **pipelined shared resource** (RSP): the issue/return path —
//!   the stage register isolates the resource's combinational depth from
//!   the PE path, which is exactly why RSP *shortens* the clock while RS
//!   alone lengthens it (Table 2: +3.3 % … +16.3 % for RS, −27 % … −35 %
//!   for RSP);
//! * each pipeline **stage** itself (resource delay / stages + register
//!   margin) including its switch traversal.

use crate::calibration as cal;
use crate::components::ComponentLibrary;
use rsp_arch::{FuKind, PeDesign, RspArchitecture, SharingPlan};
use serde::{Deserialize, Serialize};

/// Which path limits the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LimitingPath {
    /// The PE-internal combinational path.
    PeInternal,
    /// A shared combinational (non-pipelined) resource round trip.
    SharedCombinational(FuKind),
    /// A pipeline stage of a shared resource.
    SharedStage(FuKind),
    /// A pipeline stage of a locally pipelined resource.
    LocalStage(FuKind),
}

/// Clock-period breakdown for one architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayReport {
    /// PE-internal combinational path (no interconnect margin).
    pub pe_path_ns: f64,
    /// Bus-switch traversal delay (0 when nothing is shared).
    pub switch_ns: f64,
    /// Wire load of the sharing buses (0 when nothing is shared).
    pub wire_ns: f64,
    /// Resulting array clock period.
    pub clock_ns: f64,
    /// Clock of the base architecture on the same PE design.
    pub base_clock_ns: f64,
    /// Which path sets the clock.
    pub limiting: LimitingPath,
}

impl DelayReport {
    /// Critical-path reduction versus the base architecture in percent
    /// (positive = faster clock). Matches Tables 4/5, which compare
    /// against the 26 ns base array clock.
    pub fn reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.clock_ns / self.base_clock_ns)
    }
}

/// A fault-injection hook: called with each architecture entering full
/// delay synthesis ([`DelayModel::report`]). Tests hand in a hook that
/// panics on a chosen candidate to exercise a consumer's panic
/// isolation; the hook is *not* consulted by the plan-only
/// [`DelayModel::clock_floor_ns`] fast path, so admissible pre-synthesis
/// bounds stay fault-free.
pub type FaultHook = std::sync::Arc<dyn Fn(&RspArchitecture) + Send + Sync>;

/// Delay model over a component library.
#[derive(Clone, Default)]
pub struct DelayModel {
    lib: ComponentLibrary,
    fault: Option<FaultHook>,
}

impl std::fmt::Debug for DelayModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayModel")
            .field("lib", &self.lib)
            .field("fault", &self.fault.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl DelayModel {
    /// Model over the paper's Table 1 library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model over a custom library.
    pub fn with_library(lib: ComponentLibrary) -> Self {
        Self { lib, fault: None }
    }

    /// Attaches a [`FaultHook`] invoked at the top of every
    /// [`report`](Self::report) call (fault injection for robustness
    /// tests).
    pub fn with_fault_hook(
        mut self,
        hook: impl Fn(&RspArchitecture) + Send + Sync + 'static,
    ) -> Self {
        self.fault = Some(std::sync::Arc::new(hook));
        self
    }

    /// The component library in use.
    pub fn library(&self) -> &ComponentLibrary {
        &self.lib
    }

    /// Combinational delay of `fu` as seen on the datapath, including the
    /// multiplication result-handling overhead.
    fn fu_path(&self, fu: FuKind) -> f64 {
        let d = self.lib.spec(fu).delay_ns;
        if fu == FuKind::Multiplier {
            d + cal::MULT_RESULT_OVERHEAD_NS
        } else {
            d
        }
    }

    /// PE-internal path: mux → widest local compute unit (with local
    /// pipelining applied) → shift logic.
    pub fn pe_internal_path(&self, pe: &PeDesign, plan: &SharingPlan) -> f64 {
        let mux = self.lib.spec(FuKind::Mux).delay_ns;
        let shifter = if pe.has(FuKind::Shifter) {
            self.lib.spec(FuKind::Shifter).delay_ns
        } else {
            0.0
        };
        let mut widest: f64 = 0.0;
        for fu in [FuKind::Alu, FuKind::Multiplier] {
            if !pe.has(fu) {
                continue;
            }
            let stages = plan
                .local_pipelines()
                .find(|(k, _)| *k == fu)
                .map(|(_, s)| s)
                .unwrap_or(1);
            let d = if stages > 1 {
                self.fu_path(fu) / stages as f64 + cal::PIPE_REG_SETUP_NS
            } else {
                self.fu_path(fu)
            };
            widest = widest.max(d);
        }
        mux + widest + shifter
    }

    /// Admissible lower bound on [`DelayModel::report`]'s `clock_ns`,
    /// computable from the sharing plan's *stage structure alone* — no
    /// PE-path extraction, no wire-load model, no whole-plan switch
    /// fan-in. Exploration engines consult this before paying for full
    /// delay synthesis: when the bound already proves a candidate
    /// infeasible, the [`crate::ModelCache`] never sees it.
    ///
    /// The bound keeps, per shared group, only the clock term that
    /// survives every synthesis refinement: a pipeline stage
    /// (`fu/stages + register`) or a combinational round trip
    /// (`mux + fu`), each plus the *group's own* switch traversal (the
    /// whole plan's fan-in can only be larger, and switch delay is
    /// monotone in fan-in) and the interconnect margin — dropping the
    /// wire load and local shifter, both non-negative. Every retained
    /// term is one of the candidates `report` maximizes over, evaluated
    /// with equal-or-smaller addends in the same association order, so
    /// the bound never exceeds the synthesized clock under IEEE-754
    /// rounding (property-tested in this crate's test suite).
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::presets;
    /// use rsp_synth::DelayModel;
    ///
    /// let model = DelayModel::new();
    /// for arch in presets::table_architectures() {
    ///     let floor = model.clock_floor_ns(arch.plan());
    ///     assert!(floor <= model.report(&arch).clock_ns);
    /// }
    /// ```
    pub fn clock_floor_ns(&self, plan: &SharingPlan) -> f64 {
        let mux = self.lib.spec(FuKind::Mux).delay_ns;
        let mut floor: f64 = 0.0;
        for (kind, stages) in plan.local_pipelines() {
            let stage = self.fu_path(kind) / stages as f64 + cal::PIPE_REG_SETUP_NS;
            floor = floor.max(mux + stage + cal::INTERCONNECT_NS);
        }
        for g in plan.groups() {
            let sw = cal::switch_delay_ns(g.switch_fan_in());
            let cand = if g.is_pipelined() {
                let stage = self.fu_path(g.kind()) / g.stages() as f64 + cal::PIPE_REG_SETUP_NS;
                stage + sw + cal::INTERCONNECT_NS
            } else {
                mux + sw + self.fu_path(g.kind()) + cal::INTERCONNECT_NS
            };
            floor = floor.max(cand);
        }
        floor
    }

    /// Full clock-period report for an architecture.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::presets;
    /// use rsp_synth::DelayModel;
    ///
    /// let model = DelayModel::new();
    /// let base = model.report(&presets::base_8x8());
    /// assert!((base.clock_ns - 26.0).abs() < 1e-9);
    ///
    /// // RS lengthens the clock, RSP shortens it (Table 2).
    /// assert!(model.report(&presets::rs1()).clock_ns > base.clock_ns);
    /// assert!(model.report(&presets::rsp1()).clock_ns < base.clock_ns);
    /// ```
    pub fn report(&self, arch: &RspArchitecture) -> DelayReport {
        if let Some(hook) = &self.fault {
            hook(arch);
        }
        let plan = arch.plan();
        let mux = self.lib.spec(FuKind::Mux).delay_ns;
        let shifter_local = if arch.effective_pe().has(FuKind::Shifter) {
            self.lib.spec(FuKind::Shifter).delay_ns
        } else {
            0.0
        };

        let pe_path = self.pe_internal_path(arch.effective_pe(), plan);
        let fan_in = plan.switch_fan_in();
        let sw = cal::switch_delay_ns(fan_in);

        let mut clock = pe_path + cal::INTERCONNECT_NS;
        let mut limiting = LimitingPath::PeInternal;
        let mut wire_out: f64 = 0.0;

        // Local pipeline stages can limit the clock.
        for (kind, stages) in plan.local_pipelines() {
            let stage = self.fu_path(kind) / stages as f64 + cal::PIPE_REG_SETUP_NS;
            let cand = mux + stage + shifter_local + cal::INTERCONNECT_NS;
            if cand > clock {
                clock = cand;
                limiting = LimitingPath::LocalStage(kind);
            }
        }

        for g in plan.groups() {
            let wire = cal::wire_load_ns(g.switch_fan_in(), g.is_pipelined());
            wire_out = wire_out.max(wire);
            if g.is_pipelined() {
                // Issue/return path: the stage registers isolate the
                // resource; the PE path plus switch and (attenuated) wire.
                let cand = pe_path + sw + wire + cal::INTERCONNECT_NS;
                if cand > clock {
                    clock = cand;
                    limiting = LimitingPath::SharedStage(g.kind());
                }
                // Each pipeline stage plus its switch traversal.
                let stage = self.fu_path(g.kind()) / g.stages() as f64 + cal::PIPE_REG_SETUP_NS;
                let cand = stage + sw + cal::INTERCONNECT_NS;
                if cand > clock {
                    clock = cand;
                    limiting = LimitingPath::SharedStage(g.kind());
                }
            } else {
                // Combinational round trip through the shared resource.
                let cand =
                    mux + sw + self.fu_path(g.kind()) + wire + shifter_local + cal::INTERCONNECT_NS;
                if cand > clock {
                    clock = cand;
                    limiting = LimitingPath::SharedCombinational(g.kind());
                }
            }
        }

        let base_clock =
            self.pe_internal_path(arch.base().pe(), &SharingPlan::none()) + cal::INTERCONNECT_NS;

        DelayReport {
            pe_path_ns: pe_path,
            switch_ns: sw,
            wire_ns: wire_out,
            clock_ns: clock,
            base_clock_ns: base_clock,
            limiting,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::presets;

    #[test]
    fn base_pe_path_matches_table1() {
        let m = DelayModel::new();
        let base = presets::base_8x8();
        let p = m.pe_internal_path(base.base().pe(), base.plan());
        assert!((p - 25.6).abs() < 1e-9, "PE path {p}");
    }

    #[test]
    fn extracted_pe_path_is_15_3() {
        let m = DelayModel::new();
        let rsp2 = presets::rsp2();
        let p = m.pe_internal_path(rsp2.effective_pe(), rsp2.plan());
        assert!((p - 15.3).abs() < 1e-9, "Sh_PE path {p}");
    }

    #[test]
    fn rs_clocks_track_table2_within_2pct() {
        let m = DelayModel::new();
        let paper = [26.85, 27.97, 28.89, 30.23];
        for k in 1..=4 {
            let r = m.report(&presets::rs(k));
            let err = (r.clock_ns - paper[k - 1]).abs() / paper[k - 1];
            assert!(err < 0.02, "RS#{k}: {} vs {}", r.clock_ns, paper[k - 1]);
            assert!(matches!(
                r.limiting,
                LimitingPath::SharedCombinational(FuKind::Multiplier)
            ));
        }
    }

    #[test]
    fn rsp_clocks_track_table2_within_2pct() {
        let m = DelayModel::new();
        let paper = [16.72, 17.26, 18.21, 18.83];
        for k in 1..=4 {
            let r = m.report(&presets::rsp(k));
            let err = (r.clock_ns - paper[k - 1]).abs() / paper[k - 1];
            assert!(err < 0.02, "RSP#{k}: {} vs {}", r.clock_ns, paper[k - 1]);
        }
    }

    #[test]
    fn headline_delay_reduction_reproduced() {
        // Paper: critical path reduced by up to 34.69 % (RSP#1 vs 26 ns,
        // but quoted against the 25.6 ns PE; against the 26 ns array our
        // model gives ~36 %).
        let m = DelayModel::new();
        let best = (1..=4)
            .map(|k| m.report(&presets::rsp(k)).reduction_pct())
            .fold(f64::MIN, f64::max);
        assert!(
            best > 30.0 && best < 40.0,
            "best delay reduction {best:.1}%"
        );
    }

    #[test]
    fn rs_slower_monotone_in_config() {
        let m = DelayModel::new();
        let mut prev = 26.0;
        for k in 1..=4 {
            let c = m.report(&presets::rs(k)).clock_ns;
            assert!(c > prev, "RS#{k} clock must grow");
            prev = c;
        }
    }

    #[test]
    fn rp_only_shortens_clock() {
        let m = DelayModel::new();
        let r = m.report(&presets::rp_only(2));
        // Pipelined in-PE multiplier: ALU path dominates at 15.3 + margin.
        assert!(r.clock_ns < 26.0);
        assert!(r.clock_ns > 15.0);
    }

    #[test]
    fn deeper_pipeline_does_not_slow_clock() {
        let m = DelayModel::new();
        let two = m.report(&presets::rp_only(2)).clock_ns;
        let four = m.report(&presets::rp_only(4)).clock_ns;
        assert!(four <= two + 1e-9);
    }

    #[test]
    fn clock_floor_admissible_across_plan_grid() {
        // The stage-structure floor never exceeds the synthesized clock
        // for any (kind, shr, shc, stages) combination the spaces can
        // enumerate, and is exact for single-group pipelined plans whose
        // stage path limits the clock.
        let m = DelayModel::new();
        for kind in [FuKind::Multiplier, FuKind::Alu, FuKind::Shifter] {
            for stages in 1..=8u8 {
                for shr in 0..=4usize {
                    for shc in 0..=4usize {
                        let Ok(g) = rsp_arch::SharedGroup::new(kind, shr, shc, stages) else {
                            continue;
                        };
                        let Ok(plan) = rsp_arch::SharingPlan::none().with_group(g) else {
                            continue;
                        };
                        let Ok(arch) = rsp_arch::RspArchitecture::new(
                            "grid",
                            presets::base_8x8().base().clone(),
                            plan,
                        ) else {
                            continue;
                        };
                        let floor = m.clock_floor_ns(arch.plan());
                        let clock = m.report(&arch).clock_ns;
                        assert!(
                            floor <= clock,
                            "{kind:?} shr={shr} shc={shc} st={stages}: floor {floor} > {clock}"
                        );
                        assert!(floor > 0.0, "floor must be positive for shared plans");
                    }
                }
            }
        }
    }

    #[test]
    fn clock_floor_exact_when_stage_path_limits() {
        // RSP#k single-group plans: the floor keeps the stage + switch +
        // interconnect term verbatim, so whenever that term limits the
        // clock the bound is tight.
        let m = DelayModel::new();
        for k in 1..=4 {
            let arch = presets::rsp(k);
            let r = m.report(&arch);
            let floor = m.clock_floor_ns(arch.plan());
            assert!(floor <= r.clock_ns);
            if matches!(r.limiting, LimitingPath::SharedStage(_)) {
                assert!(
                    r.clock_ns - floor < r.clock_ns * 0.5,
                    "floor uselessly loose"
                );
            }
        }
    }

    #[test]
    fn reduction_pct_signs() {
        let m = DelayModel::new();
        assert!(m.report(&presets::rs1()).reduction_pct() < 0.0);
        assert!(m.report(&presets::rsp1()).reduction_pct() > 0.0);
        assert_eq!(m.report(&presets::base_8x8()).reduction_pct(), 0.0);
    }
}
