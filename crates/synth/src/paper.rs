//! The paper's published measurements, transcribed for side-by-side
//! comparison in benches, tests, and `EXPERIMENTS.md`.
//!
//! Sources: Table 1 (PE component synthesis), Table 2 (architecture
//! synthesis), Table 3 (kernel properties), Tables 4/5 (performance), and
//! the abstract/§6 headline claims.
//!
//! Transcription notes: a few printed delay-reduction percentages in the
//! paper are internally inconsistent with their own `cycles × clock`
//! products (e.g. Hydro RS#2 prints −1.07 where the arithmetic gives
//! −7.58, and Table 2 quotes RS delay growth against the 25.6 ns PE while
//! Tables 4/5 use the 26 ns array). We store the printed cycles, execution
//! times, and stalls, and always *recompute* percentages.

/// One component row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Component name.
    pub component: &'static str,
    /// Area in slices.
    pub slices: f64,
    /// Area as percentage of the PE.
    pub area_ratio_pct: f64,
    /// Critical-path delay in ns.
    pub delay_ns: f64,
    /// Delay as percentage of the PE.
    pub delay_ratio_pct: f64,
}

/// Table 1 — synthesis result of a PE.
pub const TABLE1: [Table1Row; 5] = [
    Table1Row {
        component: "PE",
        slices: 910.0,
        area_ratio_pct: 100.0,
        delay_ns: 25.6,
        delay_ratio_pct: 100.0,
    },
    Table1Row {
        component: "Multiplexer",
        slices: 58.0,
        area_ratio_pct: 6.37,
        delay_ns: 1.3,
        delay_ratio_pct: 12.89,
    },
    Table1Row {
        component: "ALU",
        slices: 253.0,
        area_ratio_pct: 27.80,
        delay_ns: 11.5,
        delay_ratio_pct: 44.92,
    },
    Table1Row {
        component: "Array multiplier",
        slices: 416.0,
        area_ratio_pct: 45.71,
        delay_ns: 19.7,
        delay_ratio_pct: 76.95,
    },
    Table1Row {
        component: "Shift logic",
        slices: 156.0,
        area_ratio_pct: 17.14,
        delay_ns: 2.5,
        delay_ratio_pct: 17.58,
    },
];

/// One architecture row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Architecture name as in the paper.
    pub arch: &'static str,
    /// Per-PE area in slices (910 base, 489 once the multiplier leaves).
    pub pe_slices: f64,
    /// Bus-switch slices (0 for base).
    pub sw_slices: f64,
    /// Synthesized array slices.
    pub array_slices: f64,
    /// Bus-switch delay in ns.
    pub sw_delay_ns: f64,
    /// Array critical path in ns.
    pub array_delay_ns: f64,
}

/// Table 2 — synthesis result of the nine architectures (8×8 array).
pub const TABLE2: [Table2Row; 9] = [
    Table2Row {
        arch: "Base",
        pe_slices: 910.0,
        sw_slices: 0.0,
        array_slices: 55739.0,
        sw_delay_ns: 0.0,
        array_delay_ns: 26.0,
    },
    Table2Row {
        arch: "RS#1",
        pe_slices: 489.0,
        sw_slices: 10.0,
        array_slices: 32446.0,
        sw_delay_ns: 0.7,
        array_delay_ns: 26.85,
    },
    Table2Row {
        arch: "RS#2",
        pe_slices: 489.0,
        sw_slices: 34.0,
        array_slices: 36816.0,
        sw_delay_ns: 1.2,
        array_delay_ns: 27.97,
    },
    Table2Row {
        arch: "RS#3",
        pe_slices: 489.0,
        sw_slices: 55.0,
        array_slices: 40577.0,
        sw_delay_ns: 1.8,
        array_delay_ns: 28.89,
    },
    Table2Row {
        arch: "RS#4",
        pe_slices: 489.0,
        sw_slices: 68.0,
        array_slices: 44768.0,
        sw_delay_ns: 2.0,
        array_delay_ns: 30.23,
    },
    Table2Row {
        arch: "RSP#1",
        pe_slices: 489.0,
        sw_slices: 10.0,
        array_slices: 33249.0,
        sw_delay_ns: 0.7,
        array_delay_ns: 16.72,
    },
    Table2Row {
        arch: "RSP#2",
        pe_slices: 489.0,
        sw_slices: 34.0,
        array_slices: 38422.0,
        sw_delay_ns: 1.2,
        array_delay_ns: 17.26,
    },
    Table2Row {
        arch: "RSP#3",
        pe_slices: 489.0,
        sw_slices: 55.0,
        array_slices: 42987.0,
        sw_delay_ns: 1.8,
        array_delay_ns: 18.21,
    },
    Table2Row {
        arch: "RSP#4",
        pe_slices: 489.0,
        sw_slices: 68.0,
        array_slices: 47981.0,
        sw_delay_ns: 2.0,
        array_delay_ns: 18.83,
    },
];

/// One kernel row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// Kernel name.
    pub kernel: &'static str,
    /// Operation set as printed.
    pub op_set: &'static str,
    /// Maximum multiplications mapped to the array in one cycle.
    pub max_mults_per_cycle: u32,
}

/// Table 3 — kernels in the experiments.
pub const TABLE3: [Table3Row; 9] = [
    Table3Row {
        kernel: "Hydro",
        op_set: "mult, add",
        max_mults_per_cycle: 6,
    },
    Table3Row {
        kernel: "ICCG",
        op_set: "mult, sub",
        max_mults_per_cycle: 4,
    },
    Table3Row {
        kernel: "Tri-diagonal",
        op_set: "mult, sub",
        max_mults_per_cycle: 4,
    },
    Table3Row {
        kernel: "Inner product",
        op_set: "mult, add",
        max_mults_per_cycle: 8,
    },
    Table3Row {
        kernel: "State",
        op_set: "mult, add",
        max_mults_per_cycle: 7,
    },
    Table3Row {
        kernel: "2D-FDCT",
        op_set: "mult, shift, add, sub",
        max_mults_per_cycle: 16,
    },
    Table3Row {
        kernel: "SAD",
        op_set: "abs, add",
        max_mults_per_cycle: 0,
    },
    Table3Row {
        kernel: "MVM",
        op_set: "mult, add",
        max_mults_per_cycle: 8,
    },
    Table3Row {
        kernel: "FFT",
        op_set: "add, sub, mult",
        max_mults_per_cycle: 8,
    },
];

/// Performance of one kernel on one architecture (Tables 4/5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfCell {
    /// Architecture name.
    pub arch: &'static str,
    /// Execution cycles.
    pub cycles: u32,
    /// Execution time in ns (`cycles × clock`).
    pub et_ns: f64,
    /// Stall cycles from resource lack (`u32::MAX` marks the base row's
    /// "-" entry).
    pub stalls: u32,
}

/// Performance of one kernel across the nine architectures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelPerf {
    /// Kernel name.
    pub kernel: &'static str,
    /// Iteration count (the `(N†)` annotation).
    pub iterations: u32,
    /// Rows in Base, RS#1..4, RSP#1..4 order.
    pub cells: [PerfCell; 9],
}

const NO_STALL_INFO: u32 = u32::MAX;

macro_rules! cell {
    ($arch:literal, $cycles:literal, $et:literal, $stalls:expr) => {
        PerfCell {
            arch: $arch,
            cycles: $cycles,
            et_ns: $et,
            stalls: $stalls,
        }
    };
}

/// Table 4 — Livermore kernels.
pub const TABLE4: [KernelPerf; 5] = [
    KernelPerf {
        kernel: "Hydro",
        iterations: 32,
        cells: [
            cell!("Base", 15, 390.0, NO_STALL_INFO),
            cell!("RS#1", 19, 510.15, 4),
            cell!("RS#2", 15, 419.55, 0),
            cell!("RS#3", 15, 433.35, 0),
            cell!("RS#4", 15, 453.45, 0),
            cell!("RSP#1", 21, 351.12, 2),
            cell!("RSP#2", 19, 327.94, 0),
            cell!("RSP#3", 19, 345.99, 0),
            cell!("RSP#4", 19, 357.77, 0),
        ],
    },
    KernelPerf {
        kernel: "ICCG",
        iterations: 32,
        cells: [
            cell!("Base", 18, 468.0, NO_STALL_INFO),
            cell!("RS#1", 18, 483.3, 0),
            cell!("RS#2", 18, 503.46, 0),
            cell!("RS#3", 18, 520.02, 0),
            cell!("RS#4", 18, 544.14, 0),
            cell!("RSP#1", 19, 317.68, 0),
            cell!("RSP#2", 19, 327.94, 0),
            cell!("RSP#3", 19, 345.99, 0),
            cell!("RSP#4", 19, 357.77, 0),
        ],
    },
    KernelPerf {
        kernel: "Tri-diagonal",
        iterations: 64,
        cells: [
            cell!("Base", 17, 442.0, NO_STALL_INFO),
            cell!("RS#1", 17, 456.45, 0),
            cell!("RS#2", 17, 475.49, 0),
            cell!("RS#3", 17, 491.13, 0),
            cell!("RS#4", 17, 513.91, 0),
            cell!("RSP#1", 18, 300.96, 0),
            cell!("RSP#2", 18, 310.68, 0),
            cell!("RSP#3", 18, 327.78, 0),
            cell!("RSP#4", 18, 338.94, 0),
        ],
    },
    KernelPerf {
        kernel: "Inner product",
        iterations: 128,
        cells: [
            cell!("Base", 21, 546.0, NO_STALL_INFO),
            cell!("RS#1", 21, 563.85, 0),
            cell!("RS#2", 21, 587.37, 0),
            cell!("RS#3", 21, 606.69, 0),
            cell!("RS#4", 21, 634.83, 0),
            cell!("RSP#1", 22, 367.84, 0),
            cell!("RSP#2", 22, 379.72, 0),
            cell!("RSP#3", 22, 400.62, 0),
            cell!("RSP#4", 22, 414.26, 0),
        ],
    },
    KernelPerf {
        kernel: "State",
        iterations: 16,
        cells: [
            cell!("Base", 20, 520.0, NO_STALL_INFO),
            cell!("RS#1", 35, 939.75, 15),
            cell!("RS#2", 20, 559.4, 0),
            cell!("RS#3", 20, 577.8, 0),
            cell!("RS#4", 20, 604.6, 0),
            cell!("RSP#1", 37, 618.64, 14),
            cell!("RSP#2", 23, 396.68, 0),
            cell!("RSP#3", 23, 418.83, 0),
            cell!("RSP#4", 23, 433.09, 0),
        ],
    },
];

/// Table 5 — DSP kernels.
pub const TABLE5: [KernelPerf; 4] = [
    KernelPerf {
        kernel: "2D-FDCT",
        iterations: 16,
        cells: [
            cell!("Base", 32, 832.0, NO_STALL_INFO),
            cell!("RS#1", 56, 1503.6, 24),
            cell!("RS#2", 38, 1062.86, 6),
            cell!("RS#3", 32, 924.48, 0),
            cell!("RS#4", 32, 967.36, 0),
            cell!("RSP#1", 64, 1070.08, 24),
            cell!("RSP#2", 40, 690.4, 0),
            cell!("RSP#3", 40, 728.4, 0),
            cell!("RSP#4", 40, 753.2, 0),
        ],
    },
    KernelPerf {
        kernel: "SAD",
        iterations: 256,
        cells: [
            cell!("Base", 39, 1014.0, NO_STALL_INFO),
            cell!("RS#1", 39, 1047.15, 0),
            cell!("RS#2", 39, 1090.83, 0),
            cell!("RS#3", 39, 1126.71, 0),
            cell!("RS#4", 39, 1178.97, 0),
            cell!("RSP#1", 39, 652.08, 0),
            cell!("RSP#2", 39, 673.14, 0),
            cell!("RSP#3", 39, 710.19, 0),
            cell!("RSP#4", 39, 734.37, 0),
        ],
    },
    KernelPerf {
        kernel: "MVM",
        iterations: 64,
        cells: [
            cell!("Base", 19, 494.0, NO_STALL_INFO),
            cell!("RS#1", 19, 510.15, 0),
            cell!("RS#2", 19, 531.43, 0),
            cell!("RS#3", 19, 548.91, 0),
            cell!("RS#4", 19, 574.37, 0),
            cell!("RSP#1", 20, 334.4, 0),
            cell!("RSP#2", 20, 345.2, 0),
            cell!("RSP#3", 20, 364.2, 0),
            cell!("RSP#4", 20, 376.6, 0),
        ],
    },
    KernelPerf {
        kernel: "FFT",
        iterations: 32,
        cells: [
            cell!("Base", 23, 598.0, NO_STALL_INFO),
            cell!("RS#1", 37, 993.45, 14),
            cell!("RS#2", 23, 643.31, 0),
            cell!("RS#3", 23, 664.47, 0),
            cell!("RS#4", 23, 695.29, 0),
            cell!("RSP#1", 40, 668.8, 13),
            cell!("RSP#2", 27, 466.02, 0),
            cell!("RSP#3", 27, 491.67, 0),
            cell!("RSP#4", 27, 508.41, 0),
        ],
    },
];

/// Headline claim: maximum area reduction (RS#1 vs Base), percent.
pub const HEADLINE_AREA_REDUCTION_PCT: f64 = 42.8;

/// Headline claim: maximum critical-path reduction (RSP#1 vs Base),
/// percent.
pub const HEADLINE_DELAY_REDUCTION_PCT: f64 = 34.69;

/// Headline claim: maximum performance improvement (SAD on RSP#1),
/// percent.
pub const HEADLINE_PERF_IMPROVEMENT_PCT: f64 = 35.7;

/// Marker used in [`PerfCell::stalls`] for the base rows where the paper
/// prints "-".
pub const STALLS_NOT_APPLICABLE: u32 = NO_STALL_INFO;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_components_sum_close_to_pe() {
        let sum: f64 = TABLE1[1..].iter().map(|r| r.slices).sum();
        assert_eq!(sum, 883.0); // PE misc = 27 slices
    }

    #[test]
    fn table2_reductions_match_abstract() {
        // The printed slice counts give 41.79 % for RS#1 while the paper
        // quotes 42.8 % — one of the paper's internal inconsistencies; we
        // accept the ~1 pp gap.
        let base = TABLE2[0].array_slices;
        let best = TABLE2[1..]
            .iter()
            .map(|r| 100.0 * (1.0 - r.array_slices / base))
            .fold(f64::MIN, f64::max);
        assert!((best - HEADLINE_AREA_REDUCTION_PCT).abs() < 1.1);
    }

    #[test]
    fn table2_delay_headline_uses_pe_clock() {
        // The 34.69 % headline is RSP#1's 16.72 ns against the 25.6 ns PE
        // (not the 26 ns array) — a quirk of the paper's Table 2.
        let quoted = 100.0 * (1.0 - 16.72 / 25.6);
        assert!((quoted - HEADLINE_DELAY_REDUCTION_PCT).abs() < 0.01);
    }

    #[test]
    fn perf_tables_et_equals_cycles_times_clock() {
        // ET must equal cycles × the Table 2 clock of the architecture.
        for t in TABLE4.iter().chain(TABLE5.iter()) {
            for cell in &t.cells {
                let clock = TABLE2
                    .iter()
                    .find(|r| r.arch == cell.arch)
                    .unwrap()
                    .array_delay_ns;
                let et = cell.cycles as f64 * clock;
                assert!(
                    (et - cell.et_ns).abs() / cell.et_ns < 0.002,
                    "{} on {}: {} vs printed {}",
                    t.kernel,
                    cell.arch,
                    et,
                    cell.et_ns
                );
            }
        }
    }

    #[test]
    fn sad_headline_improvement() {
        let sad = &TABLE5[1];
        let base = sad.cells[0].et_ns;
        let rsp1 = sad.cells[5].et_ns;
        let gain = 100.0 * (1.0 - rsp1 / base);
        assert!((gain - HEADLINE_PERF_IMPROVEMENT_PCT).abs() < 0.05);
    }

    #[test]
    fn stall_pattern_by_kernel_class() {
        // Multiplication-dense kernels stall on RS#1; the rest never do.
        let stalls = |t: &KernelPerf, i: usize| t.cells[i].stalls;
        let names_with_stalls: Vec<&str> = TABLE4
            .iter()
            .chain(TABLE5.iter())
            .filter(|t| stalls(t, 1) > 0)
            .map(|t| t.kernel)
            .collect();
        assert_eq!(names_with_stalls, vec!["Hydro", "State", "2D-FDCT", "FFT"]);
        // RSP#2 supports every kernel without stalls (§5.3).
        for t in TABLE4.iter().chain(TABLE5.iter()) {
            assert_eq!(stalls(t, 6), 0, "{} on RSP#2", t.kernel);
        }
    }
}
