//! Hardware cost model — eq. (2) of the paper plus a calibrated
//! "synthesized" view.
//!
//! The paper estimates the cost of an RSP design during exploration as
//!
//! ```text
//! HWcost = n·m·(Sh_PE + Reg + SW) + Sh_Res·(n·shr + m·shc)  <  n·m·PE
//! ```
//!
//! [`AreaModel::report`] computes exactly this from the component library,
//! and additionally a *synthesized* figure that applies the logic-trimming
//! factor observed between raw component sums and Synplify results
//! (see [`crate::calibration`]).

use crate::calibration as cal;
use crate::components::ComponentLibrary;
use rsp_arch::{PeDesign, RspArchitecture};
use serde::{Deserialize, Serialize};

/// Breakdown of an architecture's area.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Area of one (possibly stripped) PE — `Sh_PE` in eq. (2); equals the
    /// full PE for the base architecture.
    pub pe_slices: f64,
    /// Pipeline-staging registers per PE — `Reg` in eq. (2).
    pub reg_slices: f64,
    /// Bus switch per PE — `SW` in eq. (2).
    pub switch_slices: f64,
    /// Total area of all shared resources — `Sh_Res·(n·shr + m·shc)`.
    pub shared_total_slices: f64,
    /// Raw eq. (2) array total.
    pub array_slices: f64,
    /// Array total after the synthesis optimization factor (the Table 2
    /// analog).
    pub synthesized_slices: f64,
    /// Raw eq. (2) total of the *base* architecture on the same geometry.
    pub base_array_slices: f64,
    /// Synthesized total of the base architecture.
    pub base_synthesized_slices: f64,
}

impl AreaReport {
    /// Area reduction versus the base architecture in percent, computed on
    /// the synthesized figures (Table 2's `R(%)` column).
    pub fn reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.synthesized_slices / self.base_synthesized_slices)
    }

    /// The eq. (2) feasibility condition `HWcost < n·m·PE` on raw figures.
    pub fn satisfies_cost_bound(&self) -> bool {
        self.array_slices < self.base_array_slices
    }
}

/// Area model over a component library.
#[derive(Debug, Clone, Default)]
pub struct AreaModel {
    lib: ComponentLibrary,
}

impl AreaModel {
    /// Model over the paper's Table 1 library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model over a custom library.
    pub fn with_library(lib: ComponentLibrary) -> Self {
        Self { lib }
    }

    /// The component library in use.
    pub fn library(&self) -> &ComponentLibrary {
        &self.lib
    }

    /// Area of one PE design (components + fixed overhead).
    pub fn pe_area(&self, pe: &PeDesign) -> f64 {
        self.lib.pe_area(pe.units())
    }

    /// Full eq. (2) report for an architecture.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsp_arch::presets;
    /// use rsp_synth::AreaModel;
    ///
    /// let model = AreaModel::new();
    /// let rs1 = model.report(&presets::rs1());
    /// // Table 2: RS#1 shrinks the 8x8 array by >40 %.
    /// assert!(rs1.reduction_pct() > 40.0);
    /// assert!(rs1.satisfies_cost_bound());
    /// ```
    pub fn report(&self, arch: &RspArchitecture) -> AreaReport {
        let geom = arch.geometry();
        let nm = geom.pe_count() as f64;
        let plan = arch.plan();

        let full_pe = self.pe_area(arch.base().pe());
        let mut pe = self.pe_area(arch.effective_pe());
        // Extracting a unit also removes its result-select glue.
        pe -= cal::EXTRACTION_GLUE_SLICES * plan.groups().len() as f64;

        let fan_in = plan.switch_fan_in();
        let switch = cal::switch_area_slices(fan_in);

        // Shared pipelining needs staging registers on every switch port;
        // a local pipeline stages one operand path per pipelined unit.
        let reg = if plan.has_pipelining() {
            let shared_ports = if plan.groups().iter().any(|g| g.is_pipelined()) {
                fan_in
            } else {
                0
            };
            let local_ports = plan.local_pipelines().count();
            cal::PIPE_REG_SLICES_PER_PORT * (shared_ports + local_ports) as f64
        } else {
            0.0
        };

        let shared_total: f64 = plan
            .groups()
            .iter()
            .map(|g| self.lib.spec(g.kind()).area_slices * g.total_count(geom) as f64)
            .sum();

        let array = nm * (pe + reg + switch) + shared_total;
        let base_array = nm * full_pe;
        let factor = if arch.is_base() {
            cal::SYNTH_FACTOR_BASE
        } else {
            cal::SYNTH_FACTOR_SHARED
        };

        AreaReport {
            pe_slices: pe,
            reg_slices: reg,
            switch_slices: switch,
            shared_total_slices: shared_total,
            array_slices: array,
            synthesized_slices: array * factor,
            base_array_slices: base_array,
            base_synthesized_slices: base_array * cal::SYNTH_FACTOR_BASE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsp_arch::presets;

    #[test]
    fn base_area_matches_paper() {
        let model = AreaModel::new();
        let r = model.report(&presets::base_8x8());
        assert!((r.array_slices - 64.0 * 910.0).abs() < 1e-6);
        // Table 2 base: 55739 slices; our synthesized figure within 0.1 %.
        assert!((r.synthesized_slices - 55739.0).abs() / 55739.0 < 0.001);
        assert_eq!(r.reduction_pct(), 0.0);
    }

    #[test]
    fn rs_areas_track_table2_within_3pct() {
        let model = AreaModel::new();
        let paper = [32446.0, 36816.0, 40577.0, 44768.0];
        for k in 1..=4 {
            let r = model.report(&presets::rs(k));
            let err = (r.synthesized_slices - paper[k - 1]).abs() / paper[k - 1];
            assert!(
                err < 0.03,
                "RS#{k}: {} vs {}",
                r.synthesized_slices,
                paper[k - 1]
            );
        }
    }

    #[test]
    fn rsp_areas_track_table2_within_3pct() {
        let model = AreaModel::new();
        let paper = [33249.0, 38422.0, 42987.0, 47981.0];
        for k in 1..=4 {
            let r = model.report(&presets::rsp(k));
            let err = (r.synthesized_slices - paper[k - 1]).abs() / paper[k - 1];
            assert!(
                err < 0.03,
                "RSP#{k}: {} vs {}",
                r.synthesized_slices,
                paper[k - 1]
            );
        }
    }

    #[test]
    fn headline_area_reduction_reproduced() {
        // Paper: "reduced the area ... by up to 42.8 %" (RS#1).
        let model = AreaModel::new();
        let best = (1..=4)
            .map(|k| model.report(&presets::rs(k)).reduction_pct())
            .fold(f64::MIN, f64::max);
        assert!(
            (best - 42.8).abs() < 1.5,
            "best area reduction {best:.1}% should be ~42.8%"
        );
    }

    #[test]
    fn sharing_pe_is_smaller_and_rsp_adds_regs() {
        let model = AreaModel::new();
        let rs2 = model.report(&presets::rs2());
        let rsp2 = model.report(&presets::rsp2());
        assert!(rs2.pe_slices < 910.0);
        assert_eq!(rs2.reg_slices, 0.0);
        assert!(rsp2.reg_slices > 0.0);
        assert!(rsp2.array_slices > rs2.array_slices);
    }

    #[test]
    fn all_presets_satisfy_cost_bound() {
        let model = AreaModel::new();
        for arch in presets::table_architectures() {
            assert!(
                model.report(&arch).satisfies_cost_bound() || arch.is_base(),
                "{}",
                arch.name()
            );
        }
    }

    #[test]
    fn area_monotone_in_sharing_config() {
        let model = AreaModel::new();
        let mut prev = 0.0;
        for k in 1..=4 {
            let a = model.report(&presets::rs(k)).array_slices;
            assert!(a > prev, "RS#{k} must grow");
            prev = a;
        }
    }

    #[test]
    fn rp_only_charges_registers() {
        let model = AreaModel::new();
        let r = model.report(&presets::rp_only(2));
        assert!(r.reg_slices > 0.0);
        assert_eq!(r.switch_slices, 0.0);
        assert_eq!(r.shared_total_slices, 0.0);
        // RP-only keeps the multiplier in each PE: area exceeds base.
        assert!(!r.satisfies_cost_bound());
    }
}
