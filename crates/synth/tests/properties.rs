//! Property tests for the synthesis models: scaling laws, monotonicity,
//! and internal consistency over the whole parameter space.

use proptest::prelude::*;
use rsp_arch::{presets, FuKind};
use rsp_synth::{
    calibration, estimate, ActivityProfile, AreaModel, ComponentLibrary, DelayModel, PowerModel,
};

proptest! {
    #[test]
    fn component_estimates_grow_with_width(w in 2u32..64) {
        for fu in [FuKind::Multiplier, FuKind::Alu, FuKind::Shifter, FuKind::Mux] {
            let a = estimate::component(fu, w);
            let b = estimate::component(fu, w + 1);
            prop_assert!(b.area_slices >= a.area_slices, "{fu} area at {w}");
            prop_assert!(b.delay_ns >= a.delay_ns, "{fu} delay at {w}");
        }
    }

    #[test]
    fn multiplier_dominates_above_the_crossover(w in 10u32..64) {
        // The premise of the whole paper — the multiplier is the critical
        // resource — holds from ~10 bits upward: the n² multiplier
        // overtakes the linear ALU there (at 4 bits the ALU is actually
        // bigger, a physically sensible crossover the estimators expose).
        let lib = ComponentLibrary::for_width(w);
        let m = lib.spec(FuKind::Multiplier);
        for fu in [FuKind::Alu, FuKind::Shifter, FuKind::Mux] {
            prop_assert!(m.area_slices > lib.spec(fu).area_slices, "{fu} area at {w}");
            prop_assert!(m.delay_ns > lib.spec(fu).delay_ns, "{fu} delay at {w}");
        }
    }

    #[test]
    fn narrow_datapaths_invert_the_premise(w in 2u32..8) {
        // Below the crossover, sharing the multiplier would be pointless:
        // the ALU is the bigger unit. (This is why the technique targets
        // 16-bit multimedia datapaths.)
        let lib = ComponentLibrary::for_width(w);
        prop_assert!(
            lib.spec(FuKind::Multiplier).area_slices < lib.spec(FuKind::Alu).area_slices
        );
    }

    #[test]
    fn area_grows_with_geometry(rows in 2usize..12, cols in 2usize..12) {
        let model = AreaModel::new();
        let a = model.report(&presets::shared_multiplier("a", rows, cols, 1, 0, 2));
        let b = model.report(&presets::shared_multiplier("b", rows + 1, cols, 1, 0, 2));
        let c = model.report(&presets::shared_multiplier("c", rows, cols + 1, 1, 0, 2));
        prop_assert!(b.array_slices > a.array_slices);
        prop_assert!(c.array_slices > a.array_slices);
        // The base grows proportionally, so the reduction ratio is stable
        // within a few points across geometries.
        prop_assert!((b.reduction_pct() - a.reduction_pct()).abs() < 12.0);
    }

    #[test]
    fn switch_tables_monotone(f in 0usize..12) {
        prop_assert!(calibration::switch_area_slices(f + 1) > calibration::switch_area_slices(f));
        prop_assert!(calibration::switch_delay_ns(f + 1) > calibration::switch_delay_ns(f));
    }

    #[test]
    fn rs_clock_exceeds_rsp_clock_everywhere(
        rows in 2usize..10,
        shr in 1usize..4,
        shc in 0usize..4,
    ) {
        let model = DelayModel::new();
        let rs = model.report(&presets::shared_multiplier("rs", rows, rows, shr, shc, 1));
        let rsp = model.report(&presets::shared_multiplier("rsp", rows, rows, shr, shc, 2));
        // The structural heart of the paper: sharing combinationally pays
        // switch + wire on the multiplier path, pipelining removes the
        // multiplier from the path altogether.
        prop_assert!(rs.clock_ns > 26.0);
        prop_assert!(rsp.clock_ns < 26.0);
        prop_assert!(rsp.clock_ns < rs.clock_ns);
    }

    #[test]
    fn power_monotone_in_cycles_and_ops(
        cycles in 1u64..1000,
        mults in 0u64..10_000,
    ) {
        let model = PowerModel::new();
        let arch = presets::rsp2();
        let mut a = ActivityProfile::default();
        a.ops_per_fu.insert(FuKind::Multiplier, mults);
        a.cycles = cycles;
        let r1 = model.report(&arch, &a);

        let mut longer = a.clone();
        longer.cycles = cycles + 10;
        let r2 = model.report(&arch, &longer);
        prop_assert!(r2.static_pj > r1.static_pj);
        prop_assert!(r2.config_pj > r1.config_pj);

        let mut busier = a.clone();
        busier.ops_per_fu.insert(FuKind::Multiplier, mults + 1);
        let r3 = model.report(&arch, &busier);
        prop_assert!(r3.dynamic_pj > r1.dynamic_pj);
    }

    #[test]
    fn area_report_decomposition_adds_up(
        rows in 2usize..10,
        shr in 1usize..3,
        shc in 0usize..3,
        stages in 1u8..3,
    ) {
        let model = AreaModel::new();
        let arch = presets::shared_multiplier("d", rows, rows, shr, shc, stages);
        let r = model.report(&arch);
        let nm = (rows * rows) as f64;
        let rebuilt = nm * (r.pe_slices + r.reg_slices + r.switch_slices) + r.shared_total_slices;
        prop_assert!((rebuilt - r.array_slices).abs() < 1e-6);
    }
}

#[test]
fn paper_calibration_points_are_fixed() {
    // Regression pins: the four fitted switch entries and the base factor
    // must never drift (EXPERIMENTS.md quotes them).
    assert_eq!(calibration::switch_area_slices(1), 10.0);
    assert_eq!(calibration::switch_area_slices(2), 34.0);
    assert_eq!(calibration::switch_area_slices(3), 55.0);
    assert_eq!(calibration::switch_area_slices(4), 68.0);
    assert_eq!(calibration::SYNTH_FACTOR_BASE, 0.957);
    assert_eq!(calibration::SYNTH_FACTOR_SHARED, 0.92);
}
